// Delta-shipping migration subsystem (src/ship/): transfer-channel
// base+delta caching, full-image fallback (cache miss, epoch mismatch,
// unprofitable delta), convoy batching with participant-side sync
// coalescing, and exactly-once + bit-identical reconstruction under
// mid-transfer crashes.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "agent/agent.h"
#include "harness/agents.h"
#include "harness/world.h"
#include "rollback/log.h"
#include "util/rng.h"

namespace mar {
namespace {

using agent::AgentOutcome;
using agent::Itinerary;
using agent::PlatformConfig;
using harness::TestWorld;
using harness::WorkloadAgent;
using harness::register_workload;

/// `age` warm-up steps on N1, then `hops` steps alternating N2/N1 —
/// the locality-heavy shape whose migrations delta-shipping compresses.
Itinerary ping_pong(int age, int hops) {
  Itinerary sub;
  for (int s = 0; s < age; ++s) sub.step("spend_logged", TestWorld::n(1));
  for (int h = 0; h < hops; ++h) {
    sub.step("spend_logged", TestWorld::n(h % 2 == 0 ? 2 : 1));
  }
  Itinerary main_it;
  main_it.sub(std::move(sub));
  return main_it;
}

struct RunOutcome {
  bool done = false;
  std::int64_t visits = 0;
  serial::Bytes final_agent;
  std::uint64_t convoy_bytes = 0;
};

/// One agent through ping_pong(age, hops) under `cfg`; `crash_seed` != 0
/// additionally injects a deterministic schedule of transient crashes on
/// both nodes (identical schedule for identical seeds).
RunOutcome run_ping_pong(PlatformConfig cfg, int age, int hops,
                         std::uint64_t crash_seed = 0) {
  cfg.discard_log_on_top_level = false;  // the aged log is the point
  TestWorld w(cfg, /*node_count=*/2, /*seed=*/11);
  register_workload(w.platform);
  if (crash_seed != 0) {
    Rng rng(crash_seed);
    for (int k = 0; k < 6; ++k) {
      const NodeId node = TestWorld::n(1 + static_cast<int>(k % 2));
      const sim::TimeUs at = 2'000 + rng.next_below(150'000);
      const sim::TimeUs downtime = 1'000 + rng.next_below(15'000);
      w.faults.crash_at(node, at, downtime);
    }
  }
  auto ag = std::make_unique<WorkloadAgent>();
  ag->itinerary() = ping_pong(age, hops);
  ag->set_config("param_bytes", 64);
  auto id = w.platform.launch(std::move(ag));
  EXPECT_TRUE(id.is_ok());
  RunOutcome out;
  out.done = w.platform.run_until_finished(id.value()) &&
             w.platform.outcome(id.value()).state ==
                 AgentOutcome::State::done;
  if (out.done) {
    const auto& oc = w.platform.outcome(id.value());
    out.final_agent = oc.final_agent;
    auto fin = w.platform.decode(oc.final_agent);
    out.visits = fin->data().weak("visits").as_int();
  }
  const auto& by_type = w.net.stats().bytes_by_type;
  if (auto it = by_type.find("ship.convoy"); it != by_type.end()) {
    out.convoy_bytes = it->second;
  }
  return out;
}

// --------------------------------------------------------------------------
// encode_agent_delta_between (unit)
// --------------------------------------------------------------------------

TEST(DeltaBetweenTest, RoundTripsToBitIdenticalImage) {
  TestWorld w;
  register_workload(w.platform);
  auto ag = std::make_unique<WorkloadAgent>();
  ag->itinerary() = ping_pong(2, 2);
  const auto base_bytes = agent::encode_agent(*ag);

  // Arbitrary forward progress: weak/strong slots change, log appends.
  ag->data().weak("cash") = std::int64_t{58};
  ag->data().strong("results").push_back(std::string("r1"));
  ag->log().push(rollback::BeginOfStepEntry{TestWorld::n(1), "step"});
  rollback::EndOfStepEntry eos;
  eos.node = TestWorld::n(1);
  ag->log().push(std::move(eos));
  const auto cur_bytes = agent::encode_agent(*ag);

  const auto base = w.platform.decode(base_bytes);
  const auto cur = w.platform.decode(cur_bytes);
  const auto delta = agent::encode_agent_delta_between(*base, *cur);
  ASSERT_TRUE(delta.has_value());
  EXPECT_LT(delta->size(), cur_bytes.size());

  auto rebuilt = w.platform.decode(base_bytes);
  agent::apply_agent_delta(*rebuilt, *delta);
  EXPECT_EQ(agent::encode_agent(*rebuilt), cur_bytes);
}

TEST(DeltaBetweenTest, DivergedLogRefusesDelta) {
  TestWorld w;
  register_workload(w.platform);
  auto ag = std::make_unique<WorkloadAgent>();
  ag->itinerary() = ping_pong(1, 1);
  ag->log().push(rollback::BeginOfStepEntry{TestWorld::n(1), "a"});
  const auto base_bytes = agent::encode_agent(*ag);
  // A rollback popped the base's entry and pushed something else: the
  // base log is no longer a prefix.
  (void)ag->log().pop();
  ag->log().push(rollback::BeginOfStepEntry{TestWorld::n(2), "b"});
  const auto cur_bytes = agent::encode_agent(*ag);
  const auto base = w.platform.decode(base_bytes);
  const auto cur = w.platform.decode(cur_bytes);
  EXPECT_FALSE(agent::encode_agent_delta_between(*base, *cur).has_value());
  // Shorter-than-base logs refuse as well.
  (void)ag->log().pop();
  const auto shorter = w.platform.decode(agent::encode_agent(*ag));
  EXPECT_FALSE(
      agent::encode_agent_delta_between(*base, *shorter).has_value());
}

// --------------------------------------------------------------------------
// End-to-end delta shipping
// --------------------------------------------------------------------------

TEST(ShipTest, DeltaShippingMatchesFullImagesBitForBit) {
  PlatformConfig delta_cfg;
  PlatformConfig full_cfg;
  full_cfg.ship_delta = false;
  const auto delta_run = run_ping_pong(delta_cfg, 32, 12);
  const auto full_run = run_ping_pong(full_cfg, 32, 12);
  ASSERT_TRUE(delta_run.done);
  ASSERT_TRUE(full_run.done);
  EXPECT_EQ(delta_run.visits, 32 + 12);  // exactly once each
  EXPECT_EQ(delta_run.final_agent, full_run.final_agent);
  // The aged log rides every full image but only once per channel here.
  EXPECT_LT(delta_run.convoy_bytes * 2, full_run.convoy_bytes);
}

TEST(ShipTest, ChannelsActuallyShipDeltas) {
  PlatformConfig cfg;
  TestWorld w(cfg, 2, 11);
  register_workload(w.platform);
  auto ag = std::make_unique<WorkloadAgent>();
  ag->itinerary() = ping_pong(8, 10);
  auto id = w.platform.launch(std::move(ag));
  ASSERT_TRUE(id.is_ok());
  ASSERT_TRUE(w.platform.run_until_finished(id.value()));
  const auto& s1 = w.platform.node(TestWorld::n(1)).shipments().stats();
  const auto& s2 = w.platform.node(TestWorld::n(2)).shipments().stats();
  // First crossing of each channel establishes the base; every later hop
  // ships a delta.
  EXPECT_EQ(s1.full_images + s2.full_images, 2u);
  EXPECT_EQ(s1.delta_ships + s2.delta_ships, 8u);
  EXPECT_EQ(s1.need_full_retries + s2.need_full_retries, 0u);
  // The receivers materialized full images out of small deltas.
  const auto& st2 = w.platform.node(TestWorld::n(2)).storage().stats();
  EXPECT_GT(st2.ship_bytes_reconstructed, st2.ship_bytes_received);
}

TEST(ShipTest, TinyCacheFallsBackToFullImages) {
  PlatformConfig cfg;
  cfg.ship_cache_bytes = 16;  // nothing fits: every base is evicted
  const auto run = run_ping_pong(cfg, 8, 10);
  ASSERT_TRUE(run.done);
  EXPECT_EQ(run.visits, 18);
}

TEST(ShipTest, ZeroRatioNeverShipsDeltas) {
  PlatformConfig cfg;
  cfg.ship_delta_max_ratio = 0.0;
  TestWorld w(cfg, 2, 11);
  register_workload(w.platform);
  auto ag = std::make_unique<WorkloadAgent>();
  ag->itinerary() = ping_pong(4, 6);
  auto id = w.platform.launch(std::move(ag));
  ASSERT_TRUE(id.is_ok());
  ASSERT_TRUE(w.platform.run_until_finished(id.value()));
  const auto& s1 = w.platform.node(TestWorld::n(1)).shipments().stats();
  const auto& s2 = w.platform.node(TestWorld::n(2)).shipments().stats();
  EXPECT_EQ(s1.delta_ships + s2.delta_ships, 0u);
  EXPECT_GT(s1.delta_fallbacks + s2.delta_fallbacks, 0u);
}

TEST(ShipTest, ReceiverCrashForcesFullResync) {
  PlatformConfig cfg;
  TestWorld w(cfg, 2, 11);
  register_workload(w.platform);
  // Wipe N2's receive cache mid-run — while an N1->N2 delta convoy is in
  // flight, so the transfer times out and is retried under a fresh
  // transaction. The retried delta references a base (and channel epoch)
  // N2 no longer has — answered need_full, and the channel re-establishes
  // itself with a full image. (With the piggybacked PREPARE a convoy is
  // one round trip, so the crash must intercept the convoy itself; there
  // is no separate stage-ack window any more.)
  w.faults.crash_at(TestWorld::n(2), 38'500, 5'000);
  auto ag = std::make_unique<WorkloadAgent>();
  ag->itinerary() = ping_pong(8, 16);
  auto id = w.platform.launch(std::move(ag));
  ASSERT_TRUE(id.is_ok());
  ASSERT_TRUE(w.platform.run_until_finished(id.value()));
  ASSERT_EQ(w.platform.outcome(id.value()).state, AgentOutcome::State::done);
  auto fin = w.platform.decode(w.platform.outcome(id.value()).final_agent);
  EXPECT_EQ(fin->data().weak("visits").as_int(), 24);  // exactly once
  const auto& s1 = w.platform.node(TestWorld::n(1)).shipments().stats();
  EXPECT_GE(s1.need_full_retries, 1u);
}

// --------------------------------------------------------------------------
// Convoy batching + participant-side sync coalescing
// --------------------------------------------------------------------------

/// `fleet` agents, each one spend_logged step on N1 then one on N2.
/// Returns (convoys, entries, syncs at the participant N2).
struct ConvoyCounts {
  std::uint64_t convoys = 0;
  std::uint64_t entries = 0;
  std::uint64_t participant_syncs = 0;
  bool ok = false;
};

ConvoyCounts run_fleet_migration(std::uint32_t convoy_window,
                                 std::uint32_t commit_window) {
  PlatformConfig cfg;
  cfg.node_concurrency = 4;
  cfg.ship_convoy_window = convoy_window;
  cfg.group_commit_window = commit_window;
  TestWorld w(cfg, 2, 11);
  register_workload(w.platform);
  std::vector<AgentId> ids;
  for (int a = 0; a < 6; ++a) {
    auto ag = std::make_unique<WorkloadAgent>();
    Itinerary sub;
    sub.step("spend_logged", TestWorld::n(1));
    sub.step("spend_logged", TestWorld::n(2));
    Itinerary main_it;
    main_it.sub(std::move(sub));
    ag->itinerary() = std::move(main_it);
    auto id = w.platform.launch(std::move(ag));
    EXPECT_TRUE(id.is_ok());
    ids.push_back(id.value());
  }
  ConvoyCounts c;
  c.ok = w.platform.run_until_all_finished(ids);
  for (const auto id : ids) {
    c.ok = c.ok &&
           w.platform.outcome(id).state == AgentOutcome::State::done;
  }
  const auto& s1 = w.platform.node(TestWorld::n(1)).shipments().stats();
  c.convoys = s1.convoys_sent;
  c.entries = s1.entries_sent;
  c.participant_syncs =
      w.platform.node(TestWorld::n(2)).storage().stats().sync_batches;
  return c;
}

TEST(ShipTest, ConvoyWindowBatchesTransfersAndCoalescesSyncs) {
  const auto solo = run_fleet_migration(1, 1);
  const auto batched = run_fleet_migration(4, 4);
  ASSERT_TRUE(solo.ok);
  ASSERT_TRUE(batched.ok);
  EXPECT_EQ(solo.entries, 6u);
  EXPECT_EQ(batched.entries, 6u);
  EXPECT_EQ(solo.convoys, 6u);
  EXPECT_LT(batched.convoys, batched.entries);
  // Participant-side group commit: prepares/applies of one convoy share
  // their syncs — at least the required 2x reduction.
  EXPECT_LE(batched.participant_syncs * 2, solo.participant_syncs);
}

// --------------------------------------------------------------------------
// Mid-transfer crashes (randomized, 3 seeds)
// --------------------------------------------------------------------------

TEST(ShipTest, MidTransferCrashesStayExactlyOnceAndBitIdentical) {
  for (const std::uint64_t seed : {101u, 202u, 303u}) {
    PlatformConfig delta_cfg;
    delta_cfg.ship_convoy_window = 2;  // convoys in flight when killed
    PlatformConfig full_cfg = delta_cfg;
    full_cfg.ship_delta = false;
    const auto delta_run = run_ping_pong(delta_cfg, 8, 16, seed);
    const auto full_run = run_ping_pong(full_cfg, 8, 16, seed);
    ASSERT_TRUE(delta_run.done) << "seed " << seed;
    ASSERT_TRUE(full_run.done) << "seed " << seed;
    // Exactly-once arrival: every step committed exactly once despite
    // destination crashes between convoy receipt and participant flush.
    EXPECT_EQ(delta_run.visits, 24) << "seed " << seed;
    EXPECT_EQ(full_run.visits, 24) << "seed " << seed;
    // Bit-identical reconstruction: the delta-shipped agent's final
    // state equals the full-image run's, byte for byte.
    EXPECT_EQ(delta_run.final_agent, full_run.final_agent)
        << "seed " << seed;
  }
}

TEST(ShipTest, PipelinedCommitCrashesStayExactlyOnceAndBitIdentical) {
  // Same randomized kill schedule, with the full pipeline live: convoy
  // window 4 carries piggybacked PREPAREs and the coordinator's decision
  // queue batches its syncs. Kills now land between decide and flush
  // (queued decisions presumed-abort) as well as mid-convoy; exactly-once
  // arrival and bit-identical reconstruction must survive regardless.
  for (const std::uint64_t seed : {404u, 505u, 707u}) {
    PlatformConfig delta_cfg;
    delta_cfg.ship_convoy_window = 4;  // default group window 4: pipelined
    PlatformConfig full_cfg = delta_cfg;
    full_cfg.ship_delta = false;
    const auto delta_run = run_ping_pong(delta_cfg, 8, 16, seed);
    const auto full_run = run_ping_pong(full_cfg, 8, 16, seed);
    ASSERT_TRUE(delta_run.done) << "seed " << seed;
    ASSERT_TRUE(full_run.done) << "seed " << seed;
    EXPECT_EQ(delta_run.visits, 24) << "seed " << seed;
    EXPECT_EQ(full_run.visits, 24) << "seed " << seed;
    EXPECT_EQ(delta_run.final_agent, full_run.final_agent)
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace mar
