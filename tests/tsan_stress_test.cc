// Threaded-core stress: the suite the tsan CI job exists for.
//
// Real OS threads enter this codebase in exactly one place — the
// expt::run_worlds pool — plus the two supported cross-thread observation
// surfaces: relaxed-atomic stats sampling (storage/ship meters) and the
// mutex-guarded TraceSink. This test hammers all three at once under
// contended worlds (slotted scheduler, per-key locks, group-commit flush
// timers, convoy shipping) so `-DMAR_SANITIZE=thread` sweeps the whole
// threaded surface in one binary:
//
//   * many independent worlds on the pool, with a cross-thread-count
//     determinism check (8 vs 3 vs 1 threads must be bit-identical);
//   * a monitor thread live-polling a running world's storage and ship
//     meters and its trace sink — the scenario that raced before the
//     counters became RelaxedCounter and TraceSink grew its mutex;
//   * one TraceSink shared by every world in a parallel sweep.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "expt/parallel_worlds.h"
#include "harness/agents.h"
#include "harness/world.h"
#include "util/trace.h"

// TSan runs ~10x slower; shrink the sweep so the sanitizer job stays fast.
#if defined(__SANITIZE_THREAD__)
#define MAR_TSAN_BUILD 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define MAR_TSAN_BUILD 1
#endif
#endif

namespace mar {
namespace {

using agent::AgentOutcome;
using agent::Itinerary;
using harness::TestWorld;

#ifdef MAR_TSAN_BUILD
constexpr std::size_t kWorlds = 8;
#else
constexpr std::size_t kWorlds = 16;
#endif
constexpr int kNodes = 3;
constexpr int kFleet = 6;
constexpr int kSteps = 9;  // three tours of the three nodes
constexpr int kAccounts = 4;

agent::PlatformConfig contended_config() {
  agent::PlatformConfig cfg;  // per_key locking is the default
  cfg.node_concurrency = 4;
  cfg.group_commit_window = 4;
  cfg.ship_convoy_window = 4;
  cfg.lock_audit = true;  // armed in every build, not just debug
  return cfg;
}

/// Deterministic per-seed fingerprint of one contended world run.
struct WorldResult {
  int done = 0;
  std::int64_t balance_sum = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t sync_batches = 0;
  std::uint64_t convoys_sent = 0;
  std::uint64_t wire_bytes = 0;
  std::uint64_t step_commits = 0;
  std::uint64_t step_aborts = 0;

  friend bool operator==(const WorldResult&, const WorldResult&) = default;
};

/// Launch the contended fleet: every agent tours nodes 1..kNodes and
/// deposits into skewed hot accounts, so slots collide on keys, group
/// commits batch, and every migration rides a convoy.
std::vector<AgentId> launch_fleet(TestWorld& w, std::uint64_t seed) {
  harness::register_workload(w.platform);
  for (int n = 1; n <= kNodes; ++n) {
    for (int a = 0; a < kAccounts; ++a) {
      w.open_account(n, "a" + std::to_string(a), 0);
    }
  }
  Rng rng(seed ^ 0xabcdef12345ULL);
  std::vector<AgentId> ids;
  for (int a = 0; a < kFleet; ++a) {
    auto ag = std::make_unique<harness::WorkloadAgent>();
    Itinerary tour;
    for (int s = 0; s < kSteps; ++s) {
      tour.step("bank_hot", TestWorld::n(1 + s % kNodes));
    }
    Itinerary main_it;
    main_it.sub(std::move(tour));
    ag->itinerary() = std::move(main_it);
    serial::Value accounts = serial::Value::empty_list();
    for (int s = 0; s < kSteps; ++s) {
      const auto acct = rng.next_bool(0.5)
                            ? std::int64_t{0}
                            : static_cast<std::int64_t>(
                                  rng.next_below(kAccounts));
      accounts.push_back(serial::Value(acct));
    }
    ag->set_config_value("hot_accounts", std::move(accounts));
    auto r = w.platform.launch(std::move(ag));
    if (r.is_ok()) ids.push_back(r.value());
  }
  return ids;
}

WorldResult fingerprint(TestWorld& w, const std::vector<AgentId>& ids) {
  WorldResult out;
  for (const auto id : ids) {
    if (w.platform.outcome(id).state == AgentOutcome::State::done) ++out.done;
  }
  for (int n = 1; n <= kNodes; ++n) {
    for (const auto& [name, acc] :
         w.committed(n, "bank").at("accounts").as_map()) {
      (void)name;
      out.balance_sum += acc.at("balance").as_int();
    }
    auto& rt = w.platform.node(TestWorld::n(n));
    out.bytes_written += rt.storage().stats().bytes_written;
    out.sync_batches += rt.storage().stats().sync_batches;
    out.convoys_sent += rt.shipments().stats().convoys_sent;
    out.wire_bytes += rt.shipments().stats().wire_payload_bytes;
  }
  out.step_commits = w.trace.count(TraceKind::step_commit);
  out.step_aborts = w.trace.count(TraceKind::step_abort);
  return out;
}

WorldResult run_world(std::uint64_t seed) {
  TestWorld w(contended_config(), kNodes, seed);
  auto ids = launch_fleet(w, seed);
  if (!w.platform.run_until_all_finished(ids)) return {};
  return fingerprint(w, ids);
}

/// The pool must produce bit-identical results regardless of how many OS
/// threads claim the jobs — and a fleet of contended worlds must be fully
/// correct on every one of them.
TEST(TsanStressTest, ParallelWorldsDeterministicAcrossThreadCounts) {
  const auto seeds = expt::replicate_seeds(0xfeedULL, kWorlds);
  const auto job = [&](std::size_t i) { return run_world(seeds[i]); };

  const auto r8 = expt::run_worlds(kWorlds, job, 8);
  const auto r3 = expt::run_worlds(kWorlds, job, 3);
  const auto r1 = expt::run_worlds(kWorlds, job, 1);
  ASSERT_EQ(r8.size(), kWorlds);
  for (std::size_t i = 0; i < kWorlds; ++i) {
    // Every agent finished and every deposit of 1 landed exactly once.
    EXPECT_EQ(r8[i].done, kFleet) << "world " << i;
    EXPECT_EQ(r8[i].balance_sum, std::int64_t{kFleet} * kSteps)
        << "world " << i;
    EXPECT_GT(r8[i].convoys_sent, 0u) << "world " << i;
    EXPECT_GT(r8[i].step_commits, 0u) << "world " << i;
    EXPECT_EQ(r8[i], r3[i]) << "world " << i << ": 8 vs 3 threads";
    EXPECT_EQ(r8[i], r1[i]) << "world " << i << ": 8 vs 1 thread";
  }
}

/// Live monitor: a second thread samples a RUNNING world's storage and
/// ship meters plus its trace sink. Before StorageStats/ShipStats became
/// relaxed atomics and TraceSink grew its mutex this was a data race on
/// every counter bump; now it is the supported observation surface.
TEST(TsanStressTest, MonitorThreadSamplesRunningWorld) {
  TestWorld w(contended_config(), kNodes, /*seed=*/0x5eedULL);
  auto ids = launch_fleet(w, 0x5eedULL);

  std::atomic<bool> done{false};
  std::uint64_t polls = 0;
  std::uint64_t last_bytes = 0;
  std::uint64_t last_events = 0;
  std::uint64_t last_coord_syncs = 0;
  std::uint64_t last_depth_max = 0;
  bool monotonic = true;
  std::thread monitor([&] {
    while (!done.load(std::memory_order_acquire)) {
      std::uint64_t bytes = 0;
      std::uint64_t coord_syncs = 0;
      std::uint64_t depth_max = 0;
      for (int n = 1; n <= kNodes; ++n) {
        auto& rt = w.platform.node(TestWorld::n(n));
        bytes += rt.storage().stats().bytes_written;
        bytes += rt.storage().stats().ship_bytes_received;
        (void)static_cast<std::uint64_t>(
            rt.shipments().stats().wire_payload_bytes);
        // Commit-pipeline gauges: the flush timers and decision queues
        // are live while the monitor reads. inflight_tx is a gauge (it
        // moves both ways); the sync counter and the depth high-water
        // mark only ever grow.
        (void)static_cast<std::uint64_t>(rt.txm().stats().inflight_tx.load());
        coord_syncs += rt.txm().stats().coordinator_syncs.load();
        depth_max = std::max<std::uint64_t>(
            depth_max, rt.txm().stats().pipeline_depth_max.load());
      }
      const auto events = w.trace.size();
      // Meters only ever move forward while the world runs.
      if (bytes < last_bytes || events < last_events ||
          coord_syncs < last_coord_syncs || depth_max < last_depth_max) {
        monotonic = false;
      }
      last_bytes = bytes;
      last_events = events;
      last_coord_syncs = coord_syncs;
      last_depth_max = depth_max;
      ++polls;
      std::this_thread::yield();
    }
  });

  const bool finished = w.platform.run_until_all_finished(ids);
  done.store(true, std::memory_order_release);
  monitor.join();

  EXPECT_TRUE(finished);
  EXPECT_TRUE(monotonic);
  EXPECT_GT(polls, 0u);
  // A final (post-join) read agrees with the world's own view.
  std::uint64_t final_bytes = 0;
  for (int n = 1; n <= kNodes; ++n) {
    auto& rt = w.platform.node(TestWorld::n(n));
    final_bytes += rt.storage().stats().bytes_written;
    final_bytes += rt.storage().stats().ship_bytes_received;
  }
  EXPECT_GE(final_bytes, last_bytes);
  EXPECT_GT(final_bytes, 0u);
}

/// One TraceSink funnelling the event streams of every world in a
/// parallel sweep, with readers (count/size) racing the emitters.
TEST(TsanStressTest, SharedTraceSinkAcrossWorlds) {
  TraceSink shared;
  const auto seeds = expt::replicate_seeds(0xabadULL, kWorlds);
  const auto commits = expt::run_worlds(kWorlds, [&](std::size_t i) {
    TestWorld w(contended_config(), kNodes, seeds[i]);
    auto ids = launch_fleet(w, seeds[i]);
    if (!w.platform.run_until_all_finished(ids)) return std::uint64_t{0};
    // Funnel this world's stream into the shared sink while sibling
    // worlds do the same — and read it back mid-stream.
    std::uint64_t mine = 0;
    for (const auto& e : w.trace.events()) {
      shared.emit(e.time_us, e.kind, e.node, e.detail);
      if (e.kind == TraceKind::step_commit) ++mine;
    }
    (void)shared.size();
    (void)shared.count(TraceKind::step_commit);
    return mine;
  });

  std::uint64_t expected = 0;
  for (const auto c : commits) {
    EXPECT_GT(c, 0u);
    expected += c;
  }
  EXPECT_EQ(shared.count(TraceKind::step_commit), expected);
  EXPECT_GE(shared.size(), expected);
}

}  // namespace
}  // namespace mar
