// Flexible itineraries (ref [14], leaned on by Secs. 4.4.2 and 5):
// alternatives entries — options tried in order, a permanent failure
// rolls the option back (compensating its committed steps) and enters the
// next — and per-step preconditions over the weakly reversible data.
#include <gtest/gtest.h>

#include "harness/agents.h"
#include "harness/world.h"

namespace mar {
namespace {

using agent::AgentOutcome;
using agent::Condition;
using agent::Itinerary;
using agent::PlatformConfig;
using harness::TestWorld;
using harness::WorkloadAgent;
using harness::register_workload;

int touched_keys(TestWorld& w, int nodes) {
  int found = 0;
  for (int n = 1; n <= nodes; ++n) {
    for (const auto& [key, value] :
         w.committed(n, "dir").at("entries").as_map()) {
      if (key.rfind("touch-", 0) == 0) ++found;
    }
  }
  return found;
}

// ---------------------------------------------------------------------------
// Navigation over alternatives (pure itinerary unit tests)
// ---------------------------------------------------------------------------

TEST(AltNavigationTest, FirstStepEntersFirstOption) {
  Itinerary a;
  a.step("s1", TestWorld::n(1));
  Itinerary b;
  b.step("s2", TestWorld::n(2));
  Itinerary sub;
  sub.alt({std::move(a), std::move(b)});
  sub.step("s3", TestWorld::n(3));
  Itinerary main;
  main.sub(std::move(sub));

  const auto first = main.first_step();
  ASSERT_TRUE(first.has_value());
  // main[0] -> sub, sub[0] -> alt, option 0, step 0.
  EXPECT_EQ(*first, (rollback::Position{0, 0, 0, 0}));
  EXPECT_EQ(main.step_at(*first).method, "s1");
}

TEST(AltNavigationTest, LeavingAnOptionSkipsItsSiblings) {
  Itinerary a;
  a.step("s1", TestWorld::n(1));
  Itinerary b;
  b.step("s2", TestWorld::n(2));
  Itinerary sub;
  sub.alt({std::move(a), std::move(b)});
  sub.step("s3", TestWorld::n(3));
  Itinerary main;
  main.sub(std::move(sub));

  // After s1 (inside option 0), the next step is s3 — NOT option 1's s2.
  const auto next = main.next_step({0, 0, 0, 0});
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(main.step_at(*next).method, "s3");
  // And from option 1 as well.
  const auto next1 = main.next_step({0, 0, 1, 0});
  ASSERT_TRUE(next1.has_value());
  EXPECT_EQ(main.step_at(*next1).method, "s3");
}

TEST(AltNavigationTest, PrefixKindsClassifyEveryLevel) {
  Itinerary a;
  a.step("s1", TestWorld::n(1));
  Itinerary sub;
  sub.alt({std::move(a)});
  Itinerary main;
  main.sub(std::move(sub));

  EXPECT_EQ(main.prefix_kind({0}), Itinerary::PrefixKind::sub);
  EXPECT_EQ(main.prefix_kind({0, 0}), Itinerary::PrefixKind::alt);
  EXPECT_EQ(main.prefix_kind({0, 0, 0}), Itinerary::PrefixKind::alt_option);
  EXPECT_EQ(main.prefix_kind({0, 0, 0, 0}), Itinerary::PrefixKind::step);
  EXPECT_EQ(main.prefix_kind({0, 0, 0, 0, 0}),
            Itinerary::PrefixKind::invalid);
  EXPECT_EQ(main.prefix_kind({0, 0, 5}), Itinerary::PrefixKind::invalid);
  EXPECT_EQ(main.alt_option_count({0, 0, 0}), 1u);
  EXPECT_TRUE(main.valid_step({0, 0, 0, 0}));
  EXPECT_FALSE(main.valid_step({0, 0, 0}));
}

TEST(AltNavigationTest, AlternativesRoundTripThroughSerialization) {
  Itinerary a;
  a.step("s1", TestWorld::n(1));
  Itinerary b;
  b.step_if("s2", TestWorld::n(2),
            Condition{"budget", Condition::Op::ge, serial::Value(100)});
  Itinerary sub;
  sub.alt({std::move(a), std::move(b)});
  Itinerary main;
  main.sub(std::move(sub));

  const auto bytes = serial::to_bytes(main);
  const auto back = serial::from_bytes<Itinerary>(bytes);
  EXPECT_EQ(back.to_string(), main.to_string());
  EXPECT_NE(main.to_string().find("alt("), std::string::npos);
  EXPECT_NE(main.to_string().find("budget>="), std::string::npos);
}

TEST(AltNavigationTest, MainItineraryRejectsTopLevelAlternatives) {
  Itinerary a;
  a.step("s1", TestWorld::n(1));
  Itinerary main;
  main.alt({std::move(a)});
  EXPECT_EQ(main.validate_main().code(), Errc::invalid_itinerary);
}

// ---------------------------------------------------------------------------
// End-to-end alternative execution
// ---------------------------------------------------------------------------

/// Option 0 touches a directory entry and then fails permanently; option 1
/// succeeds. `nested` wraps option 0's failing step one sub deeper.
std::unique_ptr<WorkloadAgent> alt_agent(bool nested = false) {
  auto agent = std::make_unique<WorkloadAgent>();
  Itinerary failing;
  failing.step("touch_split", TestWorld::n(1));
  if (nested) {
    Itinerary inner;
    inner.step("noop", TestWorld::n(2));
    failing.sub(std::move(inner));
  } else {
    failing.step("noop", TestWorld::n(2));
  }
  Itinerary fallback;
  fallback.step("touch_split", TestWorld::n(3));
  Itinerary sub;
  sub.alt({std::move(failing), std::move(fallback)});
  sub.step("noop", TestWorld::n(4));
  Itinerary main;
  main.sub(std::move(sub));
  agent->itinerary() = std::move(main);
  // The noop inside option 0 (visit 2) fails permanently.
  agent->set_trigger("noop", 2, "fail", 0);
  return agent;
}

TEST(AlternativesTest, FailedOptionIsCompensatedAndNextOptionRuns) {
  TestWorld w;
  register_workload(w.platform);
  auto id = w.platform.launch(alt_agent());
  ASSERT_TRUE(id.is_ok());
  ASSERT_TRUE(w.platform.run_until_finished(id.value()));
  ASSERT_EQ(w.platform.outcome(id.value()).state, AgentOutcome::State::done);
  auto fin = w.platform.decode(w.platform.outcome(id.value()).final_agent);
  auto* wl = dynamic_cast<WorkloadAgent*>(fin.get());
  // Option 0's touch was compensated; only option 1's touch survives.
  EXPECT_EQ(wl->data().weak("touches").as_int(), 1);
  EXPECT_EQ(touched_keys(w, 4), 1);
  EXPECT_EQ(fin->rollbacks_completed(), 1u);
}

TEST(AlternativesTest, FailureInsideNestedSubStillFindsTheAlternative) {
  // The permanent failure happens one nesting level below the option; the
  // failure plan must walk outward past the inner (vital) sub to the
  // enclosing alternatives entry.
  TestWorld w;
  register_workload(w.platform);
  auto id = w.platform.launch(alt_agent(/*nested=*/true));
  ASSERT_TRUE(id.is_ok());
  ASSERT_TRUE(w.platform.run_until_finished(id.value()));
  ASSERT_EQ(w.platform.outcome(id.value()).state, AgentOutcome::State::done);
  EXPECT_EQ(touched_keys(w, 4), 1);
}

TEST(AlternativesTest, ExhaustedAlternativesFailTheAgent) {
  TestWorld w;
  register_workload(w.platform);
  auto agent = std::make_unique<WorkloadAgent>();
  Itinerary only;
  only.step("noop", TestWorld::n(1));
  Itinerary sub;
  sub.alt({std::move(only)});  // single option, and it fails
  Itinerary main;
  main.sub(std::move(sub));
  agent->itinerary() = std::move(main);
  agent->set_trigger("noop", 1, "fail", 0);
  auto id = w.platform.launch(std::move(agent));
  ASSERT_TRUE(id.is_ok());
  ASSERT_TRUE(w.platform.run_until_finished(id.value()));
  EXPECT_EQ(w.platform.outcome(id.value()).state,
            AgentOutcome::State::failed);
}

TEST(AlternativesTest, ExhaustedAlternativesFallBackToNonVitalSub) {
  // alt with one failing option, inside a NON-vital sub, followed by a
  // second top-level sub: the exhausted alternatives propagate outward
  // into the abandon path.
  TestWorld w;
  register_workload(w.platform);
  auto agent = std::make_unique<WorkloadAgent>();
  Itinerary only;
  only.step("touch_split", TestWorld::n(1)).step("noop", TestWorld::n(2));
  Itinerary wrapper;
  wrapper.alt({std::move(only)});
  Itinerary tail;
  tail.step("touch_split", TestWorld::n(3));
  Itinerary main;
  main.sub(std::move(wrapper), /*vital=*/false);
  main.sub(std::move(tail));
  agent->itinerary() = std::move(main);
  agent->set_trigger("noop", 2, "fail", 0);
  auto id = w.platform.launch(std::move(agent));
  ASSERT_TRUE(id.is_ok());
  ASSERT_TRUE(w.platform.run_until_finished(id.value()));
  ASSERT_EQ(w.platform.outcome(id.value()).state, AgentOutcome::State::done);
  EXPECT_EQ(touched_keys(w, 3), 1);  // only the tail's touch survives
}

TEST(AlternativesTest, ThreeOptionsTriedInOrder) {
  // Options 0 and 1 both fail; option 2 succeeds.
  TestWorld w;
  register_workload(w.platform);
  auto agent = std::make_unique<WorkloadAgent>();
  auto failing = [](int node) {
    Itinerary it;
    it.step("noop", TestWorld::n(node));
    return it;
  };
  Itinerary ok;
  ok.step("touch_split", TestWorld::n(3));
  Itinerary sub;
  sub.alt({failing(1), failing(2), std::move(ok)});
  Itinerary main;
  main.sub(std::move(sub));
  agent->itinerary() = std::move(main);
  // Both failing options' noops fail: visits 1 and 2.
  agent->set_trigger("noop", 1, "fail", 0);
  // After the first rollback the one-shot trigger is disarmed
  // (rollbacks_completed > 0), so arm the second failure via a custom
  // mechanism: the workload trigger fires once; use "fail_every_noop".
  agent->set_config("fail_all_noops", 1);
  auto id = w.platform.launch(std::move(agent));
  ASSERT_TRUE(id.is_ok());
  ASSERT_TRUE(w.platform.run_until_finished(id.value()));
  ASSERT_EQ(w.platform.outcome(id.value()).state, AgentOutcome::State::done);
  EXPECT_EQ(touched_keys(w, 3), 1);
  auto fin = w.platform.decode(w.platform.outcome(id.value()).final_agent);
  EXPECT_EQ(fin->rollbacks_completed(), 2u);
}

// ---------------------------------------------------------------------------
// Preconditions (ref [14])
// ---------------------------------------------------------------------------

TEST(ConditionTest, OperatorsEvaluateAgainstWeakData) {
  serial::Value weak = serial::Value::empty_map();
  weak.set("budget", std::int64_t{150});
  weak.set("name", std::string("amy"));
  weak.set("void", serial::Value{});

  using Op = Condition::Op;
  EXPECT_TRUE((Condition{"budget", Op::exists, {}}).eval(weak));
  EXPECT_FALSE((Condition{"missing", Op::exists, {}}).eval(weak));
  EXPECT_TRUE((Condition{"void", Op::not_exists, {}}).eval(weak));
  EXPECT_TRUE(
      (Condition{"budget", Op::eq, serial::Value(150)}).eval(weak));
  EXPECT_TRUE(
      (Condition{"name", Op::ne, serial::Value("bob")}).eval(weak));
  EXPECT_TRUE((Condition{"budget", Op::lt, serial::Value(200)}).eval(weak));
  EXPECT_TRUE((Condition{"budget", Op::le, serial::Value(150)}).eval(weak));
  EXPECT_FALSE((Condition{"budget", Op::gt, serial::Value(150)}).eval(weak));
  EXPECT_TRUE((Condition{"budget", Op::ge, serial::Value(150)}).eval(weak));
  // Comparisons against a missing slot are false, not an error.
  EXPECT_FALSE((Condition{"missing", Op::eq, serial::Value(1)}).eval(weak));
}

TEST(ConditionTest, UnsatisfiedStepsAreSkipped) {
  TestWorld w;
  register_workload(w.platform);
  auto agent = std::make_unique<WorkloadAgent>();
  Itinerary sub;
  sub.step("touch_split", TestWorld::n(1));
  // Runs only while fewer than 1 touch happened — i.e. never, since the
  // first step already touched.
  sub.step_if("touch_split", TestWorld::n(2),
              Condition{"touches", Condition::Op::lt, serial::Value(1)});
  // Runs because one touch happened.
  sub.step_if("touch_split", TestWorld::n(3),
              Condition{"touches", Condition::Op::ge, serial::Value(1)});
  Itinerary main;
  main.sub(std::move(sub));
  agent->itinerary() = std::move(main);
  auto id = w.platform.launch(std::move(agent));
  ASSERT_TRUE(id.is_ok());
  ASSERT_TRUE(w.platform.run_until_finished(id.value()));
  ASSERT_EQ(w.platform.outcome(id.value()).state, AgentOutcome::State::done);
  auto fin = w.platform.decode(w.platform.outcome(id.value()).final_agent);
  EXPECT_EQ(dynamic_cast<WorkloadAgent*>(fin.get())
                ->data().weak("touches").as_int(),
            2);
  EXPECT_EQ(touched_keys(w, 3), 2);
  // The skipped step's node saw no publish.
  EXPECT_TRUE(w.committed(2, "dir").at("entries").as_map().empty());
}

// ---------------------------------------------------------------------------
// Randomized alternatives property
// ---------------------------------------------------------------------------

/// Random itineraries of alternatives whose leading options all fail:
/// for every seed the agent must finish with exactly one touched key per
/// alternatives entry (the surviving option's), identically across all
/// three rollback strategies.
class RandomAlternatives : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomAlternatives, ExactlyOneOptionSurvivesPerAlt) {
  Rng rng(GetParam());
  const int alts = 1 + static_cast<int>(rng.next_below(3));
  std::vector<std::uint64_t> failing_options;
  for (int a = 0; a < alts; ++a) {
    failing_options.push_back(rng.next_below(3));  // 0..2 failing options
  }

  std::map<int, std::int64_t> touches_by_strategy;
  for (const auto strategy :
       {agent::RollbackStrategy::basic, agent::RollbackStrategy::optimized,
        agent::RollbackStrategy::adaptive}) {
    PlatformConfig cfg;
    cfg.strategy = strategy;
    TestWorld w(cfg, 4, GetParam());
    register_workload(w.platform);
    auto agent = std::make_unique<WorkloadAgent>();
    Itinerary sub;
    for (int a = 0; a < alts; ++a) {
      std::vector<Itinerary> options;
      for (std::uint64_t f = 0; f < failing_options[a]; ++f) {
        Itinerary failing;
        failing.step("touch_split",
                     TestWorld::n(1 + static_cast<int>(f % 4)));
        failing.step("noop", TestWorld::n(1 + static_cast<int>(a % 4)));
        options.push_back(std::move(failing));
      }
      Itinerary ok;
      ok.step("touch_split", TestWorld::n(1 + a % 4));
      options.push_back(std::move(ok));
      sub.alt(std::move(options));
    }
    Itinerary main;
    main.sub(std::move(sub));
    agent->itinerary() = std::move(main);
    agent->set_config("fail_all_noops", 1);
    auto id = w.platform.launch(std::move(agent));
    ASSERT_TRUE(id.is_ok());
    ASSERT_TRUE(w.platform.run_until_finished(id.value()));
    ASSERT_EQ(w.platform.outcome(id.value()).state,
              AgentOutcome::State::done)
        << "seed " << GetParam();
    // One surviving touch per alternatives entry; every failed option's
    // touches compensated.
    EXPECT_EQ(touched_keys(w, 4), alts) << "seed " << GetParam();
    auto fin = w.platform.decode(w.platform.outcome(id.value()).final_agent);
    touches_by_strategy[static_cast<int>(strategy)] =
        fin->data().weak("touches").as_int();
    EXPECT_EQ(fin->data().weak("touches").as_int(), alts);
  }
  // All strategies agree on the final weak state.
  for (const auto& [strategy, touches] : touches_by_strategy) {
    EXPECT_EQ(touches, touches_by_strategy.begin()->second);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomAlternatives,
                         ::testing::Values(1, 5, 9, 13, 21, 34, 55, 89));

}  // namespace
}  // namespace mar
