// Randomized property tests over whole-platform executions.
//
// Each case generates a random itinerary/workload from a seed, runs it to
// completion (with or without a rollback), and checks invariants that must
// hold for EVERY execution:
//   * exactly-once: the sum of committed resource effects matches the
//     number of committed steps, regardless of crashes and restarts;
//   * the augmented state after (rollback + re-execution) matches the
//     state of a reference execution that never took the detour;
//   * the rollback log is always well-formed (BOS/OE/EOS segments,
//     savepoints only at boundaries);
//   * both rollback strategies and both logging modes agree.
#include <gtest/gtest.h>

#include "harness/agents.h"
#include "harness/world.h"

namespace mar {
namespace {

using agent::Itinerary;
using agent::PlatformConfig;
using agent::RollbackStrategy;
using harness::TestWorld;
using harness::WorkloadAgent;
using harness::register_workload;

struct RandomPlan {
  std::vector<std::pair<std::string, int>> steps;  // method, node
  int nodes = 0;
  bool has_rollback = false;
  bool abandon = false;  // rollback mode: retry the sub, or skip it
  std::int64_t trigger_at = 0;
};

RandomPlan make_plan(Rng& rng, int max_steps, int node_count) {
  RandomPlan plan;
  plan.nodes = node_count;
  const int n = 2 + static_cast<int>(rng.next_below(
                        static_cast<std::uint64_t>(max_steps - 1)));
  static const char* kSteps[] = {"touch_split", "touch_mixed", "collect",
                                 "spend_cash", "noop", "grow_strong",
                                 "grow_weak"};
  for (int i = 0; i < n; ++i) {
    plan.steps.emplace_back(
        kSteps[rng.next_below(std::size(kSteps))],
        1 + static_cast<int>(rng.next_below(
                static_cast<std::uint64_t>(node_count))));
  }
  // Terminal trigger step (sometimes).
  plan.has_rollback = rng.next_bool(0.7);
  if (plan.has_rollback) {
    plan.abandon = rng.next_bool(0.3);
    plan.steps.emplace_back(
        "noop", 1 + static_cast<int>(rng.next_below(
                        static_cast<std::uint64_t>(node_count))));
    plan.trigger_at = static_cast<std::int64_t>(plan.steps.size());
  }
  return plan;
}

struct RunResult {
  bool done = false;
  serial::Value strong;
  std::int64_t touches = 0;
  std::int64_t cash = 0;
  std::map<int, serial::Value> dir_state;
  std::size_t log_entries = 0;
};

RunResult run_plan(const RandomPlan& plan, PlatformConfig cfg,
                   std::uint64_t seed, bool with_faults) {
  TestWorld w(cfg, plan.nodes, seed);
  register_workload(w.platform);
  for (int n = 1; n <= plan.nodes; ++n) {
    w.publish(n, "info", serial::Value("i" + std::to_string(n)));
  }
  auto agent = std::make_unique<WorkloadAgent>();
  Itinerary sub;
  for (const auto& [method, node] : plan.steps) {
    sub.step(method, TestWorld::n(node));
  }
  Itinerary main;
  main.sub(std::move(sub));
  agent->itinerary() = std::move(main);
  if (plan.has_rollback) {
    agent->set_trigger("noop", plan.trigger_at,
                       plan.abandon ? "abandon" : "sub", 0);
  }
  agent->set_config("param_bytes", 24);
  agent->set_config("strong_bytes", 48);
  agent->set_config("weak_bytes", 40);

  if (with_faults) {
    Rng frng(seed ^ 0xfa017);
    net::FaultInjector::CrashPlan fault_plan;
    fault_plan.mean_time_between_crashes_us = 1.5e6;
    fault_plan.mean_downtime_us = 120'000;
    fault_plan.horizon_us = 30'000'000;
    w.faults.random_crashes(w.net.node_ids(), frng, fault_plan);
  }

  auto id = w.platform.launch(std::move(agent));
  EXPECT_TRUE(id.is_ok());
  EXPECT_TRUE(w.platform.run_until_finished(id.value()));

  RunResult result;
  const auto& out = w.platform.outcome(id.value());
  result.done = out.state == agent::AgentOutcome::State::done;
  if (!result.done) return result;
  auto fin = w.platform.decode(out.final_agent);
  result.strong = fin->data().strong_image();
  result.touches = fin->data().weak("touches").as_int();
  result.cash = fin->data().weak("cash").as_int();
  result.log_entries = fin->log().size();
  for (int n = 1; n <= plan.nodes; ++n) {
    result.dir_state[n] = w.committed(n, "dir");
  }
  return result;
}

class RandomWorkloads : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomWorkloads, StrategiesProduceIdenticalAugmentedState) {
  Rng rng(GetParam());
  for (int round = 0; round < 6; ++round) {
    const auto plan = make_plan(rng, 8, 4);
    PlatformConfig basic;
    basic.strategy = RollbackStrategy::basic;
    PlatformConfig opt;
    opt.strategy = RollbackStrategy::optimized;
    PlatformConfig ada;
    ada.strategy = RollbackStrategy::adaptive;
    const auto a = run_plan(plan, basic, GetParam(), false);
    const auto b = run_plan(plan, opt, GetParam(), false);
    const auto c = run_plan(plan, ada, GetParam(), false);
    ASSERT_TRUE(a.done && b.done && c.done) << "seed " << GetParam();
    EXPECT_EQ(a.strong, b.strong) << "seed " << GetParam() << " round "
                                  << round;
    EXPECT_EQ(a.touches, b.touches);
    EXPECT_EQ(a.cash, b.cash);
    EXPECT_EQ(a.dir_state, b.dir_state);
    EXPECT_EQ(a.strong, c.strong) << "adaptive, seed " << GetParam();
    EXPECT_EQ(a.touches, c.touches);
    EXPECT_EQ(a.cash, c.cash);
    EXPECT_EQ(a.dir_state, c.dir_state);
  }
}

TEST_P(RandomWorkloads, LoggingModesProduceIdenticalAugmentedState) {
  Rng rng(GetParam() * 31 + 5);
  for (int round = 0; round < 6; ++round) {
    const auto plan = make_plan(rng, 8, 4);
    PlatformConfig state_cfg;
    state_cfg.logging = agent::LoggingMode::state;
    PlatformConfig trans_cfg;
    trans_cfg.logging = agent::LoggingMode::transition;
    const auto a = run_plan(plan, state_cfg, GetParam(), false);
    const auto b = run_plan(plan, trans_cfg, GetParam(), false);
    ASSERT_TRUE(a.done && b.done);
    EXPECT_EQ(a.strong, b.strong);
    EXPECT_EQ(a.touches, b.touches);
    EXPECT_EQ(a.dir_state, b.dir_state);
  }
}

TEST_P(RandomWorkloads, FaultsNeverChangeTheOutcome) {
  Rng rng(GetParam() * 101 + 7);
  for (int round = 0; round < 3; ++round) {
    const auto plan = make_plan(rng, 6, 4);
    PlatformConfig cfg;
    const auto clean = run_plan(plan, cfg, GetParam(), false);
    const auto faulty = run_plan(plan, cfg, GetParam(), true);
    ASSERT_TRUE(clean.done) << "seed " << GetParam();
    ASSERT_TRUE(faulty.done) << "seed " << GetParam();
    // Crashes may delay but must not alter any committed state.
    EXPECT_EQ(clean.strong, faulty.strong) << "seed " << GetParam();
    EXPECT_EQ(clean.touches, faulty.touches);
    EXPECT_EQ(clean.cash, faulty.cash);
    EXPECT_EQ(clean.dir_state, faulty.dir_state);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomWorkloads,
                         ::testing::Values(1, 7, 21, 55, 89, 144, 233));

// ---------------------------------------------------------------------------
// Log well-formedness after arbitrary forward executions
// ---------------------------------------------------------------------------

void check_log_well_formed(const rollback::RollbackLog& log) {
  // Grammar: (SP* (BOS OE* EOS))* SP* — savepoints only between steps.
  bool in_step = false;
  for (const auto& e : log.entries()) {
    switch (e.kind()) {
      case rollback::EntryKind::begin_of_step:
        ASSERT_FALSE(in_step) << "nested BOS";
        in_step = true;
        break;
      case rollback::EntryKind::end_of_step:
        ASSERT_TRUE(in_step) << "EOS without BOS";
        in_step = false;
        break;
      case rollback::EntryKind::operation:
        ASSERT_TRUE(in_step) << "OE outside a step segment";
        break;
      case rollback::EntryKind::savepoint:
        ASSERT_FALSE(in_step) << "SP inside a step segment";
        break;
    }
  }
  ASSERT_FALSE(in_step) << "unterminated step segment";
}

class LogGrammar : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LogGrammar, LogStaysWellFormed) {
  Rng rng(GetParam());
  for (int round = 0; round < 5; ++round) {
    const auto plan = make_plan(rng, 10, 4);
    PlatformConfig cfg;
    cfg.discard_log_on_top_level = false;  // keep the whole log
    TestWorld w(cfg, plan.nodes, GetParam());
    register_workload(w.platform);
    for (int n = 1; n <= plan.nodes; ++n) {
      w.publish(n, "info", serial::Value("x"));
    }
    auto agent = std::make_unique<WorkloadAgent>();
    Itinerary sub;
    for (const auto& [method, node] : plan.steps) {
      sub.step(method, TestWorld::n(node));
    }
    Itinerary main;
    main.sub(std::move(sub));
    agent->itinerary() = std::move(main);
    if (plan.has_rollback) {
      agent->set_trigger("noop", plan.trigger_at, "sub", 0);
    }
    auto id = w.platform.launch(std::move(agent));
    ASSERT_TRUE(id.is_ok());
    ASSERT_TRUE(w.platform.run_until_finished(id.value()));
    ASSERT_EQ(w.platform.outcome(id.value()).state,
              agent::AgentOutcome::State::done);
    auto fin = w.platform.decode(w.platform.outcome(id.value()).final_agent);
    check_log_well_formed(fin->log());
    // The log also round-trips bit-exactly.
    auto bytes = serial::to_bytes(fin->log());
    auto back = serial::from_bytes<rollback::RollbackLog>(bytes);
    EXPECT_EQ(back.to_string(), fin->log().to_string());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LogGrammar,
                         ::testing::Values(3, 33, 333, 3333));

// ---------------------------------------------------------------------------
// Exactly-once under randomized crash storms (counting variant)
// ---------------------------------------------------------------------------

class ExactlyOnce : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExactlyOnce, EveryCommittedStepEffectAppearsExactlyOnce) {
  // The touch workload publishes key "touch-<visit>" per step; after a
  // clean (rollback-free) run under a crash storm, every step's key must
  // exist exactly once across the fleet.
  PlatformConfig cfg;
  TestWorld w(cfg, 4, GetParam());
  register_workload(w.platform);
  auto agent = std::make_unique<WorkloadAgent>();
  Itinerary sub;
  constexpr int kSteps = 6;
  for (int i = 0; i < kSteps; ++i) {
    sub.step("touch_plain", TestWorld::n(1 + i % 4));
  }
  Itinerary main;
  main.sub(std::move(sub));
  agent->itinerary() = std::move(main);

  Rng frng(GetParam() ^ 0xc4a54);
  net::FaultInjector::CrashPlan plan;
  plan.mean_time_between_crashes_us = 400'000;
  plan.mean_downtime_us = 80'000;
  plan.horizon_us = 30'000'000;
  w.faults.random_crashes(w.net.node_ids(), frng, plan);

  auto id = w.platform.launch(std::move(agent));
  ASSERT_TRUE(id.is_ok());
  ASSERT_TRUE(w.platform.run_until_finished(id.value()));
  ASSERT_EQ(w.platform.outcome(id.value()).state,
            agent::AgentOutcome::State::done);

  auto fin = w.platform.decode(w.platform.outcome(id.value()).final_agent);
  auto* wl = dynamic_cast<WorkloadAgent*>(fin.get());
  ASSERT_EQ(wl->visits(), kSteps);  // no step executed twice *and committed*
  int found = 0;
  for (int n = 1; n <= 4; ++n) {
    const auto& entries = w.committed(n, "dir").at("entries").as_map();
    for (const auto& [key, value] : entries) {
      if (key.rfind("touch-", 0) == 0) ++found;
    }
  }
  EXPECT_EQ(found, kSteps) << "seed " << GetParam();
  EXPECT_EQ(wl->data().weak("touches").as_int(), kSteps);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExactlyOnce,
                         ::testing::Values(2, 4, 8, 16, 32, 64));

}  // namespace
}  // namespace mar
