// Unit tests for the compensation execution context and registry — the
// access rules of Sec. 4.3 / 4.4.1 enforced by construction.
#include <gtest/gtest.h>

#include "resource/directory.h"
#include "resource/resource_manager.h"
#include "rollback/comp_registry.h"
#include "storage/stable_storage.h"

namespace mar::rollback {
namespace {

using serial::Value;

struct Fixture : ::testing::Test {
  storage::StableStorage stable;
  resource::ResourceManager rm{stable};
  Value weak = Value::empty_map();
  Value params = Value::empty_map();

  void SetUp() override {
    rm.add_resource("dir", std::make_unique<resource::Directory>());
    weak.set("cash", std::int64_t{10});
  }

  CompensationContext make(OpEntryKind kind, bool with_agent = true,
                           bool with_rm = true) {
    return CompensationContext(kind, params, /*now=*/123,
                               with_rm ? &rm : nullptr, TxId(1),
                               with_agent ? &weak : nullptr);
  }
};

TEST_F(Fixture, ResourceEntryMayInvokeResources) {
  auto ctx = make(OpEntryKind::resource, /*with_agent=*/false);
  Value p = Value::empty_map();
  p.set("key", "k");
  p.set("value", std::int64_t{1});
  EXPECT_TRUE(ctx.invoke("dir", "publish", p).is_ok());
}

TEST_F(Fixture, ResourceEntryMustNotTouchAgentState) {
  // Sec. 4.4.1: "the compensating operation must not access the private
  // agent state space".
  auto ctx = make(OpEntryKind::resource);
  EXPECT_THROW((void)ctx.weak("cash"), LogicError);
  EXPECT_FALSE(ctx.has_weak("cash"));
}

TEST_F(Fixture, AgentEntryMustNotInvokeResources) {
  auto ctx = make(OpEntryKind::agent);
  auto r = ctx.invoke("dir", "lookup", Value::empty_map());
  EXPECT_EQ(r.code(), Errc::forbidden);
  // Weak access is the whole point of agent entries.
  EXPECT_EQ(ctx.weak("cash").as_int(), 10);
}

TEST_F(Fixture, MixedEntryMayDoBoth) {
  auto ctx = make(OpEntryKind::mixed);
  Value p = Value::empty_map();
  p.set("key", "k");
  p.set("value", std::int64_t{2});
  EXPECT_TRUE(ctx.invoke("dir", "publish", p).is_ok());
  ctx.weak("cash") = std::int64_t{99};
  EXPECT_EQ(weak.at("cash").as_int(), 99);
}

TEST_F(Fixture, UnknownWeakSlotChecks) {
  auto ctx = make(OpEntryKind::agent);
  EXPECT_THROW((void)ctx.weak("nope"), LogicError);
  EXPECT_FALSE(ctx.has_weak("nope"));
}

TEST_F(Fixture, ContextExposesParamsAndTime) {
  params.set("x", std::int64_t{5});
  auto ctx = make(OpEntryKind::agent);
  EXPECT_EQ(ctx.params().at("x").as_int(), 5);
  EXPECT_EQ(ctx.now_us(), 123u);
  EXPECT_EQ(ctx.kind(), OpEntryKind::agent);
}

TEST_F(Fixture, RegistryRunsRegisteredOps) {
  CompensationRegistry reg;
  int calls = 0;
  reg.register_op("op.a", [&calls](CompensationContext&) {
    ++calls;
    return Status::ok();
  });
  EXPECT_TRUE(reg.contains("op.a"));
  EXPECT_FALSE(reg.contains("op.b"));
  auto ctx = make(OpEntryKind::agent);
  EXPECT_TRUE(reg.run("op.a", ctx).is_ok());
  EXPECT_EQ(calls, 1);
}

TEST_F(Fixture, RegistryRejectsUnknownOps) {
  CompensationRegistry reg;
  auto ctx = make(OpEntryKind::agent);
  EXPECT_EQ(reg.run("ghost", ctx).code(), Errc::protocol_error);
}

TEST_F(Fixture, RegistryRejectsDuplicates) {
  CompensationRegistry reg;
  reg.register_op("op.a", [](CompensationContext&) { return Status::ok(); });
  EXPECT_THROW(reg.register_op("op.a", [](CompensationContext&) {
    return Status::ok();
  }),
               LogicError);
}

TEST_F(Fixture, FailuresPropagateAsStatus) {
  CompensationRegistry reg;
  reg.register_op("op.fail", [](CompensationContext&) {
    return Status(Errc::compensation_failed, "cannot undo");
  });
  auto ctx = make(OpEntryKind::agent);
  EXPECT_EQ(reg.run("op.fail", ctx).code(), Errc::compensation_failed);
}

}  // namespace
}  // namespace mar::rollback
