// Unit tests for the discrete-event kernel and the simulated network
// (latency/bandwidth cost model, reliable transport, fault handling).
#include <gtest/gtest.h>

#include "net/fault_injector.h"
#include "net/network.h"
#include "sim/simulator.h"
#include "util/check.h"
#include "util/rng.h"
#include "util/trace.h"

namespace mar {
namespace {

TEST(SimulatorTest, RunsEventsInTimeOrder) {
  sim::Simulator sim;
  std::vector<int> order;
  sim.schedule_at(30, [&] { order.push_back(3); });
  sim.schedule_at(10, [&] { order.push_back(1); });
  sim.schedule_at(20, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30u);
  EXPECT_EQ(sim.events_executed(), 3u);
}

TEST(SimulatorTest, TiesBreakInSchedulingOrder) {
  sim::Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.schedule_at(100, [&order, i] { order.push_back(i); });
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimulatorTest, EventsMayScheduleMoreEvents) {
  sim::Simulator sim;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 10) sim.schedule_after(5, chain);
  };
  sim.schedule_after(0, chain);
  sim.run();
  EXPECT_EQ(count, 10);
  EXPECT_EQ(sim.now(), 45u);
}

TEST(SimulatorTest, SchedulingIntoThePastChecks) {
  sim::Simulator sim;
  sim.schedule_at(100, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(50, [] {}), LogicError);
}

TEST(SimulatorTest, RunUntilAdvancesClock) {
  sim::Simulator sim;
  int fired = 0;
  sim.schedule_at(10, [&] { ++fired; });
  sim.schedule_at(100, [&] { ++fired; });
  sim.run_until(50);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 50u);
  EXPECT_EQ(sim.pending(), 1u);
}

TEST(SimulatorTest, RunWhilePendingStopsOnPredicate) {
  sim::Simulator sim;
  int count = 0;
  for (int i = 0; i < 10; ++i) sim.schedule_at(i * 10, [&] { ++count; });
  const bool hit = sim.run_while_pending([&] { return count == 4; });
  EXPECT_TRUE(hit);
  EXPECT_EQ(count, 4);
}

struct NetFixture : ::testing::Test {
  sim::Simulator sim;
  TraceSink trace;
  net::Network net{sim, trace};
  std::vector<std::pair<NodeId, std::string>> received;

  void add(std::uint32_t id) {
    net.add_node(NodeId(id), [this, id](const net::Message& m) {
      received.emplace_back(NodeId(id), m.type);
    });
  }
  static net::Message msg(std::uint32_t from, std::uint32_t to,
                          std::string type, std::size_t size = 0) {
    net::Message m;
    m.from = NodeId(from);
    m.to = NodeId(to);
    m.type = std::move(type);
    m.payload.resize(size);
    return m;
  }
};

TEST_F(NetFixture, DeliversWithLatencyAndBandwidth) {
  add(1);
  add(2);
  net::LinkParams lp;
  lp.latency_us = 1000;
  lp.bandwidth_bytes_per_us = 2.0;
  net.set_default_link(lp);

  net.send(msg(1, 2, "x", 2000));  // + header
  sim.run_while_pending([&] { return !received.empty(); });
  const auto expected =
      1000 + static_cast<sim::TimeUs>((2000 + 1 + 48) / 2.0);
  EXPECT_EQ(sim.now(), expected);
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0].second, "x");
}

TEST_F(NetFixture, TransferTimeMatchesFormula) {
  add(1);
  add(2);
  net::LinkParams lp;
  lp.latency_us = 500;
  lp.bandwidth_bytes_per_us = 1.25;
  net.set_link(NodeId(1), NodeId(2), lp);
  EXPECT_EQ(net.transfer_time(NodeId(1), NodeId(2), 1250), 500u + 1000u);
  EXPECT_EQ(net.transfer_time(NodeId(1), NodeId(1), 9999), 0u);
}

TEST_F(NetFixture, LocalSendBypassesNetworkCost) {
  add(1);
  net.send(msg(1, 1, "loop"));
  sim.run();
  EXPECT_EQ(sim.now(), 0u);
  EXPECT_EQ(received.size(), 1u);
  EXPECT_EQ(net.stats().bytes_sent, 0u);
}

TEST_F(NetFixture, RetransmitsUntilNodeRecovers) {
  add(1);
  add(2);
  net.crash_node(NodeId(2));
  net.send(msg(1, 2, "x"));
  sim.schedule_at(500'000, [&] { net.recover_node(NodeId(2)); });
  sim.run_while_pending([&] { return !received.empty(); });
  ASSERT_EQ(received.size(), 1u);
  EXPECT_GE(sim.now(), 500'000u);
  EXPECT_GT(net.stats().transmissions, 1u);
  // Exactly one dispatch despite many transmissions.
  EXPECT_EQ(net.stats().messages_delivered, 1u);
}

TEST_F(NetFixture, LinkOutageDelaysDelivery) {
  add(1);
  add(2);
  net.set_link_up(NodeId(1), NodeId(2), false);
  net.send(msg(1, 2, "x"));
  sim.schedule_at(300'000, [&] { net.set_link_up(NodeId(1), NodeId(2), true); });
  sim.run_while_pending([&] { return !received.empty(); });
  EXPECT_EQ(received.size(), 1u);
  EXPECT_GE(sim.now(), 300'000u);
}

TEST_F(NetFixture, StatsAccumulatePerType) {
  add(1);
  add(2);
  net.send(msg(1, 2, "alpha", 100));
  net.send(msg(1, 2, "alpha", 100));
  net.send(msg(1, 2, "beta", 10));
  sim.run_while_pending([&] { return received.size() == 3; });
  EXPECT_EQ(net.stats().messages_sent, 3u);
  EXPECT_GT(net.stats().bytes_by_type.at("alpha"),
            net.stats().bytes_by_type.at("beta"));
}

TEST_F(NetFixture, CrashNotifiesSubscribers) {
  add(1);
  std::vector<std::pair<NodeId, bool>> events;
  net.subscribe_node_state(
      [&](NodeId n, bool up) { events.emplace_back(n, up); });
  net.crash_node(NodeId(1));
  net.crash_node(NodeId(1));  // idempotent
  net.recover_node(NodeId(1));
  ASSERT_EQ(events.size(), 2u);
  EXPECT_FALSE(events[0].second);
  EXPECT_TRUE(events[1].second);
  EXPECT_EQ(trace.count(TraceKind::crash), 1u);
  EXPECT_EQ(trace.count(TraceKind::recover), 1u);
}

TEST(FaultInjectorTest, ScheduledCrashesFire) {
  sim::Simulator sim;
  TraceSink trace;
  net::Network net(sim, trace);
  net.add_node(NodeId(1), [](const net::Message&) {});
  net::FaultInjector inj(sim, net);
  inj.crash_at(NodeId(1), 1000, 500);
  sim.run_until(999);
  EXPECT_TRUE(net.node_up(NodeId(1)));
  sim.run_until(1200);
  EXPECT_FALSE(net.node_up(NodeId(1)));
  sim.run_until(2000);
  EXPECT_TRUE(net.node_up(NodeId(1)));
  EXPECT_EQ(inj.crashes_injected(), 1u);
}

TEST(FaultInjectorTest, RandomPlanIsDeterministicPerSeed) {
  auto run = [](std::uint64_t seed) {
    sim::Simulator sim;
    TraceSink trace;
    net::Network net(sim, trace);
    for (std::uint32_t i = 1; i <= 3; ++i) {
      net.add_node(NodeId(i), [](const net::Message&) {});
    }
    net::FaultInjector inj(sim, net);
    Rng rng(seed);
    net::FaultInjector::CrashPlan plan;
    plan.mean_time_between_crashes_us = 100'000;
    plan.mean_downtime_us = 10'000;
    plan.horizon_us = 1'000'000;
    inj.random_crashes(net.node_ids(), rng, plan);
    sim.run();
    return std::make_pair(inj.crashes_injected(), sim.now());
  };
  EXPECT_EQ(run(5), run(5));
  EXPECT_NE(run(5), run(6));
}

}  // namespace
}  // namespace mar
