// End-to-end tests of the agent platform: exactly-once step execution,
// migration, itinerary handling, savepoints, and both rollback algorithms.
#include <gtest/gtest.h>

#include "harness/agents.h"
#include "harness/world.h"

namespace mar {
namespace {

using agent::Itinerary;
using agent::PlatformConfig;
using agent::RollbackStrategy;
using harness::TestWorld;
using harness::WorkloadAgent;
using harness::register_workload;

/// An itinerary with one top-level sub-itinerary holding `steps`.
Itinerary single_sub(std::vector<std::pair<std::string, int>> steps) {
  Itinerary sub;
  for (auto& [method, node] : steps) {
    sub.step(method, TestWorld::n(node));
  }
  Itinerary main;
  main.sub(std::move(sub));
  return main;
}

TEST(PlatformTest, AgentRunsAcrossNodesAndCompletes) {
  TestWorld w;
  register_workload(w.platform);
  w.publish(1, "info", serial::Value("alpha"));
  w.publish(2, "info", serial::Value("beta"));
  w.publish(3, "info", serial::Value("gamma"));

  auto agent = std::make_unique<WorkloadAgent>();
  agent->itinerary() =
      single_sub({{"collect", 1}, {"collect", 2}, {"collect", 3}});
  auto id = w.platform.launch(std::move(agent));
  ASSERT_TRUE(id.is_ok());
  ASSERT_TRUE(w.platform.run_until_finished(id.value()));

  const auto& out = w.platform.outcome(id.value());
  ASSERT_EQ(out.state, agent::AgentOutcome::State::done);
  auto final_agent = w.platform.decode(out.final_agent);
  auto* wl = dynamic_cast<WorkloadAgent*>(final_agent.get());
  ASSERT_NE(wl, nullptr);
  EXPECT_EQ(wl->visits(), 3);
  ASSERT_EQ(wl->results().as_list().size(), 3u);
  EXPECT_EQ(wl->results().as_list()[0].as_string(), "alpha");
  EXPECT_EQ(wl->results().as_list()[1].as_string(), "beta");
  EXPECT_EQ(wl->results().as_list()[2].as_string(), "gamma");
  EXPECT_EQ(out.final_node, TestWorld::n(3));
  // Two migrations: N1 -> N2 -> N3.
  EXPECT_EQ(w.trace.count(TraceKind::migrate), 2u);
}

TEST(PlatformTest, ResourceEffectsCommitExactlyOnce) {
  TestWorld w;
  register_workload(w.platform);
  w.open_account(1, "acct", 500);
  w.open_account(2, "acct", 500);

  auto agent = std::make_unique<WorkloadAgent>();
  agent->itinerary() = single_sub({{"withdraw", 1}, {"withdraw", 2}});
  auto id = w.platform.launch(std::move(agent));
  ASSERT_TRUE(id.is_ok());
  ASSERT_TRUE(w.platform.run_until_finished(id.value()));
  ASSERT_EQ(w.platform.outcome(id.value()).state,
            agent::AgentOutcome::State::done);

  EXPECT_EQ(resource::Bank::balance_in(w.committed(1, "bank"), "acct"), 400);
  EXPECT_EQ(resource::Bank::balance_in(w.committed(2, "bank"), "acct"), 400);
  auto final_agent = w.platform.decode(w.platform.outcome(id.value()).final_agent);
  EXPECT_EQ(dynamic_cast<WorkloadAgent*>(final_agent.get())->cash(), 200);
}

// The paper's core scenario (Fig. 3): steps committed on several nodes,
// rollback initiated later, compensations run in reverse order on the
// nodes that executed the steps, strong objects restored at the savepoint.
TEST(PlatformTest, PartialRollbackRestoresAugmentedState) {
  for (auto strategy : {RollbackStrategy::basic, RollbackStrategy::optimized}) {
    PlatformConfig cfg;
    cfg.strategy = strategy;
    TestWorld w(cfg);
    register_workload(w.platform);
    w.open_account(1, "acct", 1000);
    w.open_account(2, "acct", 1000);
    w.publish(1, "info", serial::Value("x"));

    auto agent = std::make_unique<WorkloadAgent>();
    // Sub-itinerary: collect(N1) withdraw(N1) withdraw(N2) noop(N3):
    // trigger a rollback of the whole sub-itinerary in the last step.
    agent->itinerary() = single_sub(
        {{"collect", 1}, {"withdraw", 1}, {"withdraw", 2}, {"noop", 3}});
    agent->set_trigger("noop", 4, "sub", 0);
    auto id = w.platform.launch(std::move(agent));
    ASSERT_TRUE(id.is_ok());
    ASSERT_TRUE(w.platform.run_until_finished(id.value()));
    ASSERT_EQ(w.platform.outcome(id.value()).state,
              agent::AgentOutcome::State::done)
        << "strategy=" << static_cast<int>(strategy) << " status: "
        << w.platform.outcome(id.value()).status;

    // Resource state: both withdraws compensated, then re-executed after
    // the rollback resumed from the savepoint (the agent re-runs the sub).
    EXPECT_EQ(resource::Bank::balance_in(w.committed(1, "bank"), "acct"), 900);
    EXPECT_EQ(resource::Bank::balance_in(w.committed(2, "bank"), "acct"), 900);

    auto fin = w.platform.decode(w.platform.outcome(id.value()).final_agent);
    auto* wl = dynamic_cast<WorkloadAgent*>(fin.get());
    // Strong results list was restored at the savepoint, then refilled
    // exactly once by the re-executed collect step.
    EXPECT_EQ(wl->results().as_list().size(), 1u) << "strategy "
        << static_cast<int>(strategy);
    // Weak cash: first pass +200, compensation -200, re-run +200.
    EXPECT_EQ(wl->cash(), 200);
    // visits: 3 committed on the first pass (the triggering noop aborted),
    // plus 4 on the re-run after the rollback.
    EXPECT_EQ(wl->visits(), 7);
    EXPECT_GE(w.trace.count(TraceKind::comp_commit), 1u);
    EXPECT_EQ(w.trace.count(TraceKind::restore), 1u);
    EXPECT_EQ(w.trace.count(TraceKind::rollback_done), 1u);
  }
}

TEST(PlatformTest, OptimizedRollbackAvoidsAgentTransfers) {
  // Steps with only RCE/ACE entries: the optimized algorithm must not move
  // the agent at all during rollback; the basic one must visit each node.
  std::uint64_t transfers[2] = {0, 0};
  int i = 0;
  for (auto strategy : {RollbackStrategy::basic, RollbackStrategy::optimized}) {
    PlatformConfig cfg;
    cfg.strategy = strategy;
    TestWorld w(cfg);
    register_workload(w.platform);
    for (int node = 1; node <= 4; ++node) w.open_account(node, "acct", 1000);

    auto agent = std::make_unique<WorkloadAgent>();
    agent->itinerary() = single_sub({{"withdraw", 1},
                                     {"withdraw", 2},
                                     {"withdraw", 3},
                                     {"noop", 4}});
    agent->set_trigger("noop", 4, "sub", 0);
    // Let the re-run not trigger again (visits continue counting).
    auto id = w.platform.launch(std::move(agent));
    ASSERT_TRUE(id.is_ok());
    ASSERT_TRUE(w.platform.run_until_finished(id.value()));
    ASSERT_EQ(w.platform.outcome(id.value()).state,
              agent::AgentOutcome::State::done);
    transfers[i++] = w.platform.rollback_transfers();
  }
  EXPECT_GE(transfers[0], 3u);  // basic: back along N3, N2, N1
  EXPECT_EQ(transfers[1], 0u);  // optimized: RCEs shipped, agent stays
}

TEST(PlatformTest, MixedCompensationForcesAgentTransfer) {
  PlatformConfig cfg;
  cfg.strategy = RollbackStrategy::optimized;
  TestWorld w(cfg);
  register_workload(w.platform);
  w.set_rate(2, "USD", "EUR", 900'000);

  auto agent = std::make_unique<WorkloadAgent>();
  // fund at N1 (MCE: mint), exchange at N2 (MCE: currency), rollback at N3.
  agent->itinerary() =
      single_sub({{"fund", 1}, {"exchange", 2}, {"noop", 3}});
  agent->set_trigger("noop", 3, "sub", 0);
  agent->data().weak("cash") = std::int64_t{200};
  auto id = w.platform.launch(std::move(agent));
  ASSERT_TRUE(id.is_ok());
  ASSERT_TRUE(w.platform.run_until_finished(id.value()));
  ASSERT_EQ(w.platform.outcome(id.value()).state,
            agent::AgentOutcome::State::done)
      << w.platform.outcome(id.value()).status;

  // Mixed entries force the agent back to N2 and N1 during rollback.
  EXPECT_GE(w.platform.rollback_transfers(), 2u);

  auto fin = w.platform.decode(w.platform.outcome(id.value()).final_agent);
  auto* wl = dynamic_cast<WorkloadAgent*>(fin.get());
  // Compensation of the exchange converted 180 EUR back at the inverse
  // rate: 180 EUR -> 199 USD (integer rounding — state-EQUIVALENT, not
  // identical, exactly Sec. 3.2's point); the re-run: 199 -> 179 EUR.
  EXPECT_EQ(wl->data().weak("cash_eur").as_int(), 179);
  EXPECT_EQ(wl->cash(), 0);
  // fund was compensated (wallet emptied) and re-run: 5 coins again, with
  // fresh serial numbers (the paper's digital-cash equivalence).
  ASSERT_EQ(wl->wallet().as_list().size(), 5u);
  EXPECT_GT(wl->wallet().as_list()[0].at("serial").as_int(), 5);
}

TEST(PlatformTest, AdhocSavepointRollback) {
  TestWorld w;
  register_workload(w.platform);
  w.open_account(2, "acct", 300);

  auto agent = std::make_unique<WorkloadAgent>();
  // savepoint at N1, withdraw at N2, trigger explicit rollback at N3 to
  // the ad-hoc savepoint; on resume, re-run withdraw and finish.
  agent->itinerary() = single_sub(
      {{"savepoint", 1}, {"withdraw", 2}, {"noop", 3}});
  agent->set_trigger("noop", 3, "last_sp", 0);
  auto id = w.platform.launch(std::move(agent));
  ASSERT_TRUE(id.is_ok());
  ASSERT_TRUE(w.platform.run_until_finished(id.value()));
  ASSERT_EQ(w.platform.outcome(id.value()).state,
            agent::AgentOutcome::State::done)
      << w.platform.outcome(id.value()).status;
  // withdraw ran twice, compensated once: net one withdraw.
  EXPECT_EQ(resource::Bank::balance_in(w.committed(2, "bank"), "acct"), 200);
}

TEST(PlatformTest, NonCompensatableStepBlocksRollback) {
  TestWorld w;
  register_workload(w.platform);

  auto agent = std::make_unique<WorkloadAgent>();
  agent->itinerary() = single_sub({{"poison", 1}, {"noop", 2}});
  agent->set_trigger("noop", 2, "sub", 0);
  auto id = w.platform.launch(std::move(agent));
  ASSERT_TRUE(id.is_ok());
  ASSERT_TRUE(w.platform.run_until_finished(id.value()));
  const auto& out = w.platform.outcome(id.value());
  EXPECT_EQ(out.state, agent::AgentOutcome::State::failed);
  EXPECT_EQ(out.status.code(), Errc::not_compensatable);
}

TEST(PlatformTest, LogDiscardedAfterTopLevelSubItinerary) {
  TestWorld w;
  register_workload(w.platform);
  w.open_account(1, "acct", 1000);
  w.open_account(2, "acct", 1000);

  auto agent = std::make_unique<WorkloadAgent>();
  Itinerary main;
  main.sub(Itinerary{}.step("withdraw", TestWorld::n(1)))
      .sub(Itinerary{}.step("withdraw", TestWorld::n(2)));
  agent->itinerary() = std::move(main);
  auto id = w.platform.launch(std::move(agent));
  ASSERT_TRUE(id.is_ok());
  ASSERT_TRUE(w.platform.run_until_finished(id.value()));
  ASSERT_EQ(w.platform.outcome(id.value()).state,
            agent::AgentOutcome::State::done);
  // One discard per completed top-level sub-itinerary.
  EXPECT_EQ(w.trace.count(TraceKind::log_discard), 2u);
  auto fin = w.platform.decode(w.platform.outcome(id.value()).final_agent);
  EXPECT_TRUE(fin->log().empty());
}

}  // namespace
}  // namespace mar
