// Abandoning sub-itineraries: skip-rollback and non-vital subs (Sec. 5:
// "non vital sub-sagas ... can be realized in our model by using flexible
// itineraries"). An abandoned sub-itinerary is rolled back to its entry
// savepoint and then SKIPPED: execution resumes at the step after it.
#include <gtest/gtest.h>

#include "harness/agents.h"
#include "harness/world.h"

namespace mar {
namespace {

using agent::Itinerary;
using agent::PlatformConfig;
using agent::RollbackStrategy;
using harness::TestWorld;
using harness::WorkloadAgent;
using harness::register_workload;

/// main( SI_a(touch@1, noop@2) [vital per arg], SI_b(touch@3, noop@4) ).
std::unique_ptr<WorkloadAgent> two_subs_agent(bool first_vital = true) {
  auto agent = std::make_unique<WorkloadAgent>();
  Itinerary a;
  a.step("touch_split", TestWorld::n(1)).step("noop", TestWorld::n(2));
  Itinerary b;
  b.step("touch_split", TestWorld::n(3)).step("noop", TestWorld::n(4));
  Itinerary main;
  main.sub(std::move(a), first_vital);
  main.sub(std::move(b));
  agent->itinerary() = std::move(main);
  return agent;
}

int touched_keys(TestWorld& w, int nodes) {
  int found = 0;
  for (int n = 1; n <= nodes; ++n) {
    for (const auto& [key, value] :
         w.committed(n, "dir").at("entries").as_map()) {
      if (key.rfind("touch-", 0) == 0) ++found;
    }
  }
  return found;
}

TEST(AbandonTest, ExplicitAbandonSkipsToNextSub) {
  TestWorld w;
  register_workload(w.platform);
  auto agent = two_subs_agent();
  // In SI_a's noop (visit 2): abandon the current sub-itinerary.
  agent->set_trigger("noop", 2, "abandon", 0);
  auto id = w.platform.launch(std::move(agent));
  ASSERT_TRUE(id.is_ok());
  ASSERT_TRUE(w.platform.run_until_finished(id.value()));
  ASSERT_EQ(w.platform.outcome(id.value()).state,
            agent::AgentOutcome::State::done);
  auto fin = w.platform.decode(w.platform.outcome(id.value()).final_agent);
  auto* wl = dynamic_cast<WorkloadAgent*>(fin.get());
  // SI_a's touch was compensated and SI_a was NOT retried: only SI_b's
  // touch survives.
  EXPECT_EQ(wl->data().weak("touches").as_int(), 1);
  EXPECT_EQ(touched_keys(w, 4), 1);
  // visits: touch (1), noop aborted, then SI_b's touch + noop = 3.
  EXPECT_EQ(wl->visits(), 3);
  EXPECT_EQ(fin->rollbacks_completed(), 1u);
}

TEST(AbandonTest, AbandonLastSubFinishesTheAgent) {
  TestWorld w;
  register_workload(w.platform);
  auto agent = std::make_unique<WorkloadAgent>();
  Itinerary only;
  only.step("touch_split", TestWorld::n(1)).step("noop", TestWorld::n(2));
  Itinerary main;
  main.sub(std::move(only));
  agent->itinerary() = std::move(main);
  agent->set_trigger("noop", 2, "abandon", 0);
  auto id = w.platform.launch(std::move(agent));
  ASSERT_TRUE(id.is_ok());
  ASSERT_TRUE(w.platform.run_until_finished(id.value()));
  ASSERT_EQ(w.platform.outcome(id.value()).state,
            agent::AgentOutcome::State::done);
  auto fin = w.platform.decode(w.platform.outcome(id.value()).final_agent);
  EXPECT_EQ(dynamic_cast<WorkloadAgent*>(fin.get())
                ->data().weak("touches").as_int(),
            0);
  EXPECT_EQ(touched_keys(w, 2), 0);
}

TEST(AbandonTest, AbandonedTopLevelSubDiscardsTheLog) {
  TestWorld w;
  register_workload(w.platform);
  auto agent = two_subs_agent();
  agent->set_trigger("noop", 2, "abandon", 0);
  auto id = w.platform.launch(std::move(agent));
  ASSERT_TRUE(id.is_ok());
  ASSERT_TRUE(w.platform.run_until_finished(id.value()));
  // Abandoning SI_a (a top-level sub) carries the same semantics as
  // completing it: the whole rollback log is discarded.
  EXPECT_GE(w.trace.count(TraceKind::log_discard), 2u);  // SI_a + SI_b
}

TEST(AbandonTest, PermanentFailureInNonVitalSubIsContained) {
  TestWorld w;
  register_workload(w.platform);
  auto agent = two_subs_agent(/*first_vital=*/false);
  // SI_a's noop declares the step permanently failed; the platform must
  // abandon SI_a (non-vital) and continue with SI_b.
  agent->set_trigger("noop", 2, "fail", 0);
  auto id = w.platform.launch(std::move(agent));
  ASSERT_TRUE(id.is_ok());
  ASSERT_TRUE(w.platform.run_until_finished(id.value()));
  ASSERT_EQ(w.platform.outcome(id.value()).state,
            agent::AgentOutcome::State::done);
  auto fin = w.platform.decode(w.platform.outcome(id.value()).final_agent);
  EXPECT_EQ(dynamic_cast<WorkloadAgent*>(fin.get())
                ->data().weak("touches").as_int(),
            1);
  EXPECT_EQ(touched_keys(w, 4), 1);
}

TEST(AbandonTest, PermanentFailureInVitalSubFailsTheAgent) {
  TestWorld w;
  register_workload(w.platform);
  auto agent = two_subs_agent(/*first_vital=*/true);
  agent->set_trigger("noop", 2, "fail", 0);
  auto id = w.platform.launch(std::move(agent));
  ASSERT_TRUE(id.is_ok());
  ASSERT_TRUE(w.platform.run_until_finished(id.value()));
  const auto& out = w.platform.outcome(id.value());
  EXPECT_EQ(out.state, agent::AgentOutcome::State::failed);
  EXPECT_EQ(out.status.code(), Errc::forbidden);
  // The failed step's transaction was aborted: its step effects are gone,
  // but previously committed steps stay committed (no automatic rollback
  // for vital failures — forward recovery is the application's job).
  EXPECT_EQ(touched_keys(w, 4), 1);
}

TEST(AbandonTest, FailureInNestedNonVitalAbandonsOnlyTheInnermost) {
  TestWorld w;
  register_workload(w.platform);
  auto agent = std::make_unique<WorkloadAgent>();
  // SI3( touch@4, SI4(touch@1, fail-noop@2) [non-vital], SI5(touch@3) )
  Itinerary si4;
  si4.step("touch_split", TestWorld::n(1)).step("noop", TestWorld::n(2));
  Itinerary si5;
  si5.step("touch_split", TestWorld::n(3));
  Itinerary si3;
  si3.step("touch_split", TestWorld::n(4));
  si3.sub(std::move(si4), /*vital=*/false);
  si3.sub(std::move(si5));
  Itinerary main;
  main.sub(std::move(si3));
  agent->itinerary() = std::move(main);
  agent->set_trigger("noop", 3, "fail", 0);
  auto id = w.platform.launch(std::move(agent));
  ASSERT_TRUE(id.is_ok());
  ASSERT_TRUE(w.platform.run_until_finished(id.value()));
  ASSERT_EQ(w.platform.outcome(id.value()).state,
            agent::AgentOutcome::State::done);
  auto fin = w.platform.decode(w.platform.outcome(id.value()).final_agent);
  // SI3's own touch (N4) and SI5's touch (N3) survive; SI4's touch was
  // compensated when SI4 was abandoned.
  EXPECT_EQ(dynamic_cast<WorkloadAgent*>(fin.get())
                ->data().weak("touches").as_int(),
            2);
  EXPECT_EQ(touched_keys(w, 4), 2);
}

TEST(AbandonTest, AbandonEnclosingSubViaLevelsUp) {
  TestWorld w;
  register_workload(w.platform);
  auto agent = std::make_unique<WorkloadAgent>();
  // main( SI3( SI4(touch@1, noop@2) ), SI6(touch@3) ): abandon SI3 (one
  // level out) from inside SI4 — both SI4's progress and SI3 are skipped;
  // execution continues with SI6.
  Itinerary si4;
  si4.step("touch_split", TestWorld::n(1)).step("noop", TestWorld::n(2));
  Itinerary si3;
  si3.sub(std::move(si4));
  Itinerary si6;
  si6.step("touch_split", TestWorld::n(3));
  Itinerary main;
  main.sub(std::move(si3));
  main.sub(std::move(si6));
  agent->itinerary() = std::move(main);
  agent->set_trigger("noop", 2, "abandon", 1);
  auto id = w.platform.launch(std::move(agent));
  ASSERT_TRUE(id.is_ok());
  ASSERT_TRUE(w.platform.run_until_finished(id.value()));
  ASSERT_EQ(w.platform.outcome(id.value()).state,
            agent::AgentOutcome::State::done);
  auto fin = w.platform.decode(w.platform.outcome(id.value()).final_agent);
  EXPECT_EQ(dynamic_cast<WorkloadAgent*>(fin.get())
                ->data().weak("touches").as_int(),
            1);
  EXPECT_EQ(touched_keys(w, 3), 1);
}

// The abandon path must work under every rollback strategy.
class AbandonAcrossStrategies
    : public ::testing::TestWithParam<RollbackStrategy> {};

TEST_P(AbandonAcrossStrategies, MixedStepsCompensateBeforeTheSkip) {
  PlatformConfig cfg;
  cfg.strategy = GetParam();
  TestWorld w(cfg);
  register_workload(w.platform);
  auto agent = std::make_unique<WorkloadAgent>();
  Itinerary a;
  a.step("touch_mixed", TestWorld::n(1))
      .step("touch_split", TestWorld::n(2))
      .step("noop", TestWorld::n(3));
  Itinerary b;
  b.step("touch_split", TestWorld::n(4));
  Itinerary main;
  main.sub(std::move(a));
  main.sub(std::move(b));
  agent->itinerary() = std::move(main);
  agent->set_trigger("noop", 3, "abandon", 0);
  auto id = w.platform.launch(std::move(agent));
  ASSERT_TRUE(id.is_ok());
  ASSERT_TRUE(w.platform.run_until_finished(id.value()));
  ASSERT_EQ(w.platform.outcome(id.value()).state,
            agent::AgentOutcome::State::done);
  auto fin = w.platform.decode(w.platform.outcome(id.value()).final_agent);
  EXPECT_EQ(dynamic_cast<WorkloadAgent*>(fin.get())
                ->data().weak("touches").as_int(),
            1);
  EXPECT_EQ(touched_keys(w, 4), 1);
}

INSTANTIATE_TEST_SUITE_P(Strategies, AbandonAcrossStrategies,
                         ::testing::Values(RollbackStrategy::basic,
                                           RollbackStrategy::optimized,
                                           RollbackStrategy::adaptive));

// Non-vital flags round-trip through agent serialization (they live in
// the itinerary, which migrates with the agent).
TEST(AbandonTest, VitalFlagSurvivesSerialization) {
  Itinerary inner;
  inner.step("noop", TestWorld::n(1));
  Itinerary main;
  main.sub(std::move(inner), /*vital=*/false);
  auto bytes = serial::to_bytes(main);
  const auto back = serial::from_bytes<Itinerary>(bytes);
  ASSERT_EQ(back.entries().size(), 1u);
  EXPECT_FALSE(back.entries()[0].vital());
  EXPECT_TRUE(main.entries()[0].vital() == false);
}

}  // namespace
}  // namespace mar
