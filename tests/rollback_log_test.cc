// Unit tests for the rollback log (Sec. 4.2): entry layout, Fig. 2
// structure, savepoint GC under state and transition logging, and
// strong-state reconstruction.
#include <gtest/gtest.h>

#include "rollback/log.h"
#include "serial/serializable.h"
#include "util/check.h"
#include "util/rng.h"

namespace mar::rollback {
namespace {

using serial::Value;

Value strong_state(std::int64_t x) {
  Value v = Value::empty_map();
  v.set("x", x);
  return v;
}

SavepointEntry full_sp(std::uint32_t id, std::int64_t x) {
  SavepointEntry sp;
  sp.id = SavepointId(id);
  sp.image = strong_state(x);
  sp.resume_position = {0, 0};
  return sp;
}

SavepointEntry delta_sp(std::uint32_t id, const Value& from, const Value& to) {
  SavepointEntry sp;
  sp.id = SavepointId(id);
  sp.transition = true;
  sp.delta = serial::diff(from, to);
  return sp;
}

SavepointEntry light_sp(std::uint32_t id) {
  SavepointEntry sp;
  sp.id = SavepointId(id);
  sp.lightweight = true;
  return sp;
}

OperationEntry op(OpEntryKind kind, std::string name) {
  OperationEntry oe;
  oe.kind = kind;
  oe.comp_op = std::move(name);
  oe.resource_node = NodeId(1);
  oe.resource = "bank";
  return oe;
}

/// Append a BOS / ops / EOS step segment.
void push_step(RollbackLog& log, std::uint32_t node,
               std::vector<OperationEntry> ops, bool mixed = false) {
  log.push(BeginOfStepEntry{NodeId(node), "step"});
  for (auto& o : ops) log.push(std::move(o));
  EndOfStepEntry eos;
  eos.node = NodeId(node);
  eos.has_mixed = mixed;
  log.push(std::move(eos));
}

TEST(LogEntryTest, RoundTripsEveryKind) {
  // savepoint
  {
    SavepointEntry sp = full_sp(3, 42);
    sp.origin = SavepointOrigin::sub_itinerary;
    sp.depth = 2;
    LogEntry e(sp);
    auto back = serial::from_bytes<LogEntry>(serial::to_bytes(e));
    EXPECT_EQ(back.kind(), EntryKind::savepoint);
    EXPECT_EQ(back.savepoint().id, SavepointId(3));
    EXPECT_EQ(back.savepoint().depth, 2u);
    EXPECT_EQ(back.savepoint().image, strong_state(42));
    EXPECT_EQ(back.savepoint().resume_position, (Position{0, 0}));
  }
  // begin-of-step
  {
    LogEntry e(BeginOfStepEntry{NodeId(7), "buy"});
    auto back = serial::from_bytes<LogEntry>(serial::to_bytes(e));
    EXPECT_EQ(back.begin_of_step().node, NodeId(7));
    EXPECT_EQ(back.begin_of_step().step_name, "buy");
  }
  // operation
  {
    OperationEntry oe = op(OpEntryKind::mixed, "comp.x");
    oe.params = strong_state(1);
    LogEntry e(oe);
    auto back = serial::from_bytes<LogEntry>(serial::to_bytes(e));
    EXPECT_EQ(back.operation().kind, OpEntryKind::mixed);
    EXPECT_EQ(back.operation().comp_op, "comp.x");
    EXPECT_EQ(back.operation().params, strong_state(1));
    EXPECT_EQ(back.operation().resource, "bank");
  }
  // end-of-step
  {
    EndOfStepEntry eos;
    eos.node = NodeId(4);
    eos.has_mixed = true;
    eos.cannot_compensate = true;
    eos.alternatives = {NodeId(5), NodeId(6)};
    LogEntry e(eos);
    auto back = serial::from_bytes<LogEntry>(serial::to_bytes(e));
    EXPECT_TRUE(back.end_of_step().has_mixed);
    EXPECT_TRUE(back.end_of_step().cannot_compensate);
    EXPECT_EQ(back.end_of_step().alternatives.size(), 2u);
  }
}

TEST(RollbackLogTest, Fig2Layout) {
  // Reproduce Fig. 2: ... SP_k BOS_n OE_n,1 OE_n,2 ... OE_n,p EOS_n ...
  RollbackLog log;
  log.push(full_sp(1, 0));
  push_step(log, 3,
            {op(OpEntryKind::resource, "c1"), op(OpEntryKind::agent, "c2"),
             op(OpEntryKind::resource, "c3")});
  EXPECT_EQ(log.to_string(),
            "SP_1 BOS(N3,step) OE[RCE,c1] OE[ACE,c2] OE[RCE,c3] EOS(N3)");
}

TEST(RollbackLogTest, PopReturnsReverseOrder) {
  RollbackLog log;
  push_step(log, 1, {op(OpEntryKind::resource, "c1"),
                     op(OpEntryKind::resource, "c2")});
  EXPECT_EQ(log.pop().kind(), EntryKind::end_of_step);
  EXPECT_EQ(log.pop().operation().comp_op, "c2");
  EXPECT_EQ(log.pop().operation().comp_op, "c1");
  EXPECT_EQ(log.pop().kind(), EntryKind::begin_of_step);
  EXPECT_TRUE(log.empty());
  EXPECT_THROW((void)log.pop(), LogicError);
}

TEST(RollbackLogTest, TrailingSavepointAndLastEos) {
  RollbackLog log;
  EXPECT_FALSE(log.trailing_savepoint().has_value());
  push_step(log, 2, {});
  EXPECT_EQ(log.last_end_of_step()->node, NodeId(2));
  log.push(full_sp(1, 0));
  log.push(light_sp(2));
  EXPECT_EQ(log.trailing_savepoint(), SavepointId(2));
  // last_end_of_step skips the trailing savepoints.
  EXPECT_EQ(log.last_end_of_step()->node, NodeId(2));
}

TEST(RollbackLogTest, SerializationRoundTrip) {
  RollbackLog log;
  log.push(full_sp(1, 7));
  push_step(log, 2, {op(OpEntryKind::mixed, "cx")}, /*mixed=*/true);
  log.push(light_sp(2));
  auto back = serial::from_bytes<RollbackLog>(serial::to_bytes(log));
  EXPECT_EQ(back.size(), log.size());
  EXPECT_EQ(back.to_string(), log.to_string());
  EXPECT_EQ(back.byte_size(), log.byte_size());
}

// --------------------------------------------------------------------------
// Strong-state reconstruction (state + transition logging)
// --------------------------------------------------------------------------

TEST(RollbackLogTest, StrongStateFromFullImage) {
  RollbackLog log;
  log.push(full_sp(1, 10));
  push_step(log, 1, {});
  log.push(full_sp(2, 20));
  auto r = log.strong_state_at(SavepointId(1));
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value(), strong_state(10));
  EXPECT_EQ(log.strong_state_at(SavepointId(2)).value(), strong_state(20));
}

TEST(RollbackLogTest, StrongStateFromDeltaChain) {
  RollbackLog log;
  log.push(full_sp(1, 10));
  push_step(log, 1, {});
  log.push(delta_sp(2, strong_state(10), strong_state(20)));
  push_step(log, 2, {});
  log.push(delta_sp(3, strong_state(20), strong_state(35)));
  EXPECT_EQ(log.strong_state_at(SavepointId(1)).value(), strong_state(10));
  EXPECT_EQ(log.strong_state_at(SavepointId(2)).value(), strong_state(20));
  EXPECT_EQ(log.strong_state_at(SavepointId(3)).value(), strong_state(35));
}

TEST(RollbackLogTest, LightweightSavepointAliasesPreviousData) {
  RollbackLog log;
  log.push(full_sp(1, 10));
  log.push(light_sp(2));
  EXPECT_EQ(log.strong_state_at(SavepointId(2)).value(), strong_state(10));
}

TEST(RollbackLogTest, MissingSavepointReported) {
  RollbackLog log;
  EXPECT_EQ(log.strong_state_at(SavepointId(9)).code(), Errc::not_found);
}

TEST(RollbackLogTest, DeltaWithoutBaseReported) {
  RollbackLog log;
  log.push(delta_sp(1, strong_state(0), strong_state(5)));
  EXPECT_EQ(log.strong_state_at(SavepointId(1)).code(), Errc::protocol_error);
}

// --------------------------------------------------------------------------
// Savepoint GC (Sec. 4.4.2) — "non-trivial if transition logging is used"
// --------------------------------------------------------------------------

TEST(GcTest, StateLoggingGcJustRemoves) {
  RollbackLog log;
  log.push(full_sp(1, 10));
  push_step(log, 1, {op(OpEntryKind::resource, "c")});
  log.push(full_sp(2, 20));
  push_step(log, 2, {});
  auto r = log.gc_savepoint(SavepointId(2));
  ASSERT_TRUE(r.has_value());
  // SP_2 was the last data-carrying entry, so the log reports that a next
  // savepoint must be a full image — irrelevant under state logging, where
  // every savepoint is full anyway.
  EXPECT_TRUE(*r);
  EXPECT_FALSE(log.contains_savepoint(SavepointId(2)));
  // Operation entries stay (paper: "but not the operation entries").
  EXPECT_EQ(log.size(), 6u);
  EXPECT_EQ(log.strong_state_at(SavepointId(1)).value(), strong_state(10));
}

TEST(GcTest, UnknownSavepointReturnsNullopt) {
  RollbackLog log;
  EXPECT_FALSE(log.gc_savepoint(SavepointId(4)).has_value());
}

TEST(GcTest, DeltaMergedIntoSuccessorOnGc) {
  RollbackLog log;
  log.push(full_sp(1, 10));
  log.push(delta_sp(2, strong_state(10), strong_state(20)));
  log.push(delta_sp(3, strong_state(20), strong_state(30)));
  auto r = log.gc_savepoint(SavepointId(2));
  ASSERT_TRUE(r.has_value());
  EXPECT_FALSE(*r);
  // SP_3 must still reconstruct correctly through the composed delta.
  EXPECT_EQ(log.strong_state_at(SavepointId(3)).value(), strong_state(30));
}

TEST(GcTest, FullImageGcMaterializesSuccessor) {
  RollbackLog log;
  log.push(full_sp(1, 10));
  log.push(delta_sp(2, strong_state(10), strong_state(20)));
  auto r = log.gc_savepoint(SavepointId(1));
  ASSERT_TRUE(r.has_value());
  EXPECT_FALSE(*r);
  // SP_2 had only a delta; after GC of its base it must be self-contained.
  EXPECT_EQ(log.strong_state_at(SavepointId(2)).value(), strong_state(20));
}

TEST(GcTest, TailGcForcesNextFullImage) {
  RollbackLog log;
  log.push(full_sp(1, 10));
  log.push(delta_sp(2, strong_state(10), strong_state(20)));
  auto r = log.gc_savepoint(SavepointId(2));
  ASSERT_TRUE(r.has_value());
  EXPECT_TRUE(*r);  // chain tail left the log: next SP must be full
}

TEST(GcTest, LightweightGcIsFree) {
  RollbackLog log;
  log.push(full_sp(1, 10));
  log.push(light_sp(2));
  auto r = log.gc_savepoint(SavepointId(2));
  ASSERT_TRUE(r.has_value());
  EXPECT_FALSE(*r);
  EXPECT_EQ(log.strong_state_at(SavepointId(1)).value(), strong_state(10));
}

// Randomized chain property: any GC order of middle savepoints preserves
// reconstruction of the remaining ones.
class GcChainProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GcChainProperty, ReconstructionSurvivesRandomGc) {
  Rng rng(GetParam());
  for (int round = 0; round < 30; ++round) {
    RollbackLog log;
    const int n = 4 + static_cast<int>(rng.next_below(6));
    std::vector<Value> states;
    states.push_back(strong_state(rng.next_in(0, 100)));
    log.push(full_sp(1, states[0].at("x").as_int()));
    for (int i = 1; i < n; ++i) {
      states.push_back(strong_state(rng.next_in(0, 100)));
      push_step(log, 1, {});
      log.push(delta_sp(static_cast<std::uint32_t>(i + 1), states[i - 1],
                        states[i]));
    }
    // GC a random subset of the middle savepoints, in random order.
    std::vector<int> victims;
    for (int i = 1; i < n; ++i) {
      if (rng.next_bool(0.4)) victims.push_back(i + 1);
    }
    rng.shuffle(victims);
    std::set<int> gone(victims.begin(), victims.end());
    for (int v : victims) {
      auto r = log.gc_savepoint(SavepointId(static_cast<std::uint32_t>(v)));
      ASSERT_TRUE(r.has_value());
    }
    for (int i = 0; i < n; ++i) {
      if (gone.contains(i + 1)) continue;
      auto r = log.strong_state_at(SavepointId(static_cast<std::uint32_t>(i + 1)));
      ASSERT_TRUE(r.is_ok()) << "sp " << i + 1 << ": " << r.status();
      EXPECT_EQ(r.value(), states[static_cast<std::size_t>(i)])
          << "sp " << i + 1 << " round " << round;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GcChainProperty,
                         ::testing::Values(2, 71, 828, 1828));

}  // namespace
}  // namespace mar::rollback
