// Bounded crash recovery: the segmented record log, fuzzy checkpoints and
// torn-write fault injection (src/storage/segment_log.h).
//
// Covers the invariants recovery rests on:
//   * replaying the checksummed log rebuilds the per-key index
//     bit-identically to the never-crashed materialized state;
//   * a torn tail frame (crash mid-append) truncates back to exactly the
//     committed prefix — never past it, never short of it;
//   * mid-log damage (bit flip in a committed frame) hard-fails with
//     CorruptionError instead of silently diverging;
//   * a checkpoint torn by the crash it raced falls back one generation;
//   * at platform level, crashes with injected storage faults preserve
//     exactly-once and bit-identity with the clean-run oracle, including
//     crashes landing during compaction and during a checkpoint window.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>

#include "agent/agent.h"
#include "agent/node_runtime.h"
#include "harness/agents.h"
#include "harness/world.h"
#include "storage/segment_log.h"
#include "storage/stable_storage.h"

namespace mar {
namespace {

using agent::AgentOutcome;
using agent::Itinerary;
using agent::PlatformConfig;
using harness::TestWorld;
using harness::WorkloadAgent;
using storage::CorruptionError;
using storage::SegmentLog;
using storage::SegmentLogConfig;
using storage::StorageFault;

serial::Bytes bytes_of(const std::string& s) {
  return serial::Bytes(s.begin(), s.end());
}

// ---------------------------------------------------------------------------
// Unit level: SegmentLog
// ---------------------------------------------------------------------------

TEST(SegmentLogTest, RotationAndRetirement) {
  SegmentLog log(SegmentLogConfig{/*segment_bytes=*/128});
  for (int i = 0; i < 16; ++i) {
    log.append_reset("k" + std::to_string(i % 2),
                     bytes_of(std::string(40, 'a' + i)));
  }
  // 16 frames of ~50+ bytes cannot fit one 128-byte segment: rotation
  // happened, and each reset superseded the key's older frames, so the
  // fully-dead sealed segments retired instead of accumulating.
  EXPECT_GT(log.retired_segments(), 0u);
  EXPECT_LT(log.live_segments(), 16u);
  ASSERT_NE(log.segments("k0"), nullptr);
  EXPECT_EQ((*log.segments("k0"))[0], bytes_of(std::string(40, 'a' + 14)));
  EXPECT_EQ((*log.segments("k1"))[0], bytes_of(std::string(40, 'a' + 15)));
}

TEST(SegmentLogTest, RecoverRebuildsIndexBitIdentically) {
  SegmentLog log(SegmentLogConfig{/*segment_bytes=*/96});
  log.append_reset("alpha", bytes_of("base-alpha"));
  log.append_delta("alpha", bytes_of("d1"));
  log.append_reset("beta", bytes_of("base-beta"));
  log.append_delta("alpha", bytes_of("d2"));
  log.append_delta("beta", bytes_of("d3"));
  log.append_reset("gamma", bytes_of("base-gamma"));
  log.append_erase("beta");
  const auto alpha = *log.segments("alpha");
  const auto gamma = *log.segments("gamma");

  const auto report = log.recover();
  EXPECT_GT(report.replayed_bytes, 0u);
  EXPECT_GT(report.segments_scanned, 0u);
  EXPECT_FALSE(report.truncated_torn_tail);
  ASSERT_NE(log.segments("alpha"), nullptr);
  EXPECT_EQ(*log.segments("alpha"), alpha);
  EXPECT_EQ(*log.segments("gamma"), gamma);
  EXPECT_FALSE(log.has("beta"));  // erase frames must replay too

  // Idempotent: a second scan reproduces the same state.
  const auto again = log.recover();
  EXPECT_EQ(again.replayed_bytes, report.replayed_bytes);
  EXPECT_EQ(*log.segments("alpha"), alpha);
}

TEST(SegmentLogTest, TornTailTruncatesToCommittedPrefix) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    SegmentLog log(SegmentLogConfig{/*segment_bytes=*/256});
    log.append_reset("a", bytes_of("base"));
    for (int i = 0; i < 6; ++i) {
      log.append_delta("a", bytes_of("delta" + std::to_string(i)));
    }
    const auto committed = *log.segments("a");
    ASSERT_EQ(log.inject_fault(StorageFault::torn_tail, seed),
              StorageFault::torn_tail);
    const auto report = log.recover();
    EXPECT_TRUE(report.truncated_torn_tail) << "seed " << seed;
    ASSERT_NE(log.segments("a"), nullptr);
    EXPECT_EQ(*log.segments("a"), committed) << "seed " << seed;
    // The log stays writable after truncation.
    log.append_delta("a", bytes_of("post"));
    EXPECT_EQ(log.segments("a")->back(), bytes_of("post"));
  }
}

TEST(SegmentLogTest, BitFlipInCommittedFrameHardFails) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    SegmentLog log(SegmentLogConfig{/*segment_bytes=*/256});
    log.append_reset("a", bytes_of("base-image-with-some-heft"));
    for (int i = 0; i < 8; ++i) {
      log.append_delta("a", bytes_of("delta-" + std::to_string(i)));
    }
    ASSERT_EQ(log.inject_fault(StorageFault::bit_flip, seed),
              StorageFault::bit_flip);
    EXPECT_THROW(log.recover(), CorruptionError) << "seed " << seed;
  }
}

TEST(SegmentLogTest, BitFlipNeedsAMidLogTarget) {
  SegmentLog log(SegmentLogConfig{});
  log.append_reset("a", bytes_of("only-frame"));
  // One frame total: damaging it would be indistinguishable from a torn
  // tail, so the injector refuses rather than arming a silent test.
  EXPECT_EQ(log.inject_fault(StorageFault::bit_flip, 1),
            StorageFault::none);
}

TEST(SegmentLogTest, CheckpointBoundsReplay) {
  SegmentLog log(SegmentLogConfig{/*segment_bytes=*/128});
  auto churn = [&](int rounds, const char* tag) {
    for (int i = 0; i < rounds; ++i) {
      log.append_reset("k" + std::to_string(i % 3),
                       bytes_of(std::string(32, 'x') + tag));
    }
  };
  churn(12, "old");
  const auto unbounded = log.recover();  // no checkpoint: full replay

  ASSERT_TRUE(log.begin_checkpoint());
  EXPECT_GT(log.complete_checkpoint(), 0u);
  churn(12, "mid");
  ASSERT_TRUE(log.begin_checkpoint());
  EXPECT_GT(log.complete_checkpoint(), 0u);
  EXPECT_EQ(log.checkpoints_completed(), 2u);
  churn(2, "new");

  const auto bounded = log.recover();
  EXPECT_TRUE(bounded.used_checkpoint);
  EXPECT_FALSE(bounded.checkpoint_fell_back);
  EXPECT_LT(bounded.replayed_bytes, unbounded.replayed_bytes);
  EXPECT_EQ((*log.segments("k1"))[0],
            bytes_of(std::string(32, 'x') + std::string("new")));
}

TEST(SegmentLogTest, TornCheckpointFallsBackOneGeneration) {
  SegmentLog log(SegmentLogConfig{/*segment_bytes=*/128});
  for (int i = 0; i < 8; ++i) {
    log.append_reset("k", bytes_of("gen0-" + std::to_string(i)));
  }
  ASSERT_TRUE(log.begin_checkpoint());
  ASSERT_GT(log.complete_checkpoint(), 0u);
  log.append_reset("k", bytes_of("gen1"));
  ASSERT_TRUE(log.begin_checkpoint());
  ASSERT_GT(log.complete_checkpoint(), 0u);
  log.append_delta("k", bytes_of("tail"));

  ASSERT_EQ(log.inject_fault(StorageFault::torn_checkpoint, 5),
            StorageFault::torn_checkpoint);
  const auto report = log.recover();
  EXPECT_TRUE(report.used_checkpoint);
  EXPECT_TRUE(report.checkpoint_fell_back);
  // Fallback replays more log (from the older begin-LSN) but lands on
  // the identical final state.
  ASSERT_NE(log.segments("k"), nullptr);
  ASSERT_EQ(log.segments("k")->size(), 2u);
  EXPECT_EQ((*log.segments("k"))[0], bytes_of("gen1"));
  EXPECT_EQ((*log.segments("k"))[1], bytes_of("tail"));
}

TEST(SegmentLogTest, CrashDuringCheckpointAbandonsTheAttempt) {
  SegmentLog log(SegmentLogConfig{});
  log.append_reset("k", bytes_of("v0"));
  ASSERT_TRUE(log.begin_checkpoint());
  log.append_reset("k", bytes_of("v1"));  // fuzzy: appends keep flowing
  // Crash before complete_checkpoint(): the pending snapshot is volatile.
  const auto report = log.recover();
  EXPECT_FALSE(report.used_checkpoint);
  EXPECT_FALSE(log.checkpoint_in_progress());
  EXPECT_EQ(log.checkpoints_completed(), 0u);
  EXPECT_EQ((*log.segments("k"))[0], bytes_of("v1"));
}

TEST(StableStorageTest, ClassicModeMetersFullReplayEnvelope) {
  storage::StableStorage s;  // classic: no segmented log
  s.record_reset("agentimg:1", bytes_of(std::string(100, 'b')));
  s.record_append("agentimg:1", bytes_of(std::string(20, 'd')));
  EXPECT_FALSE(s.segmented());
  EXPECT_EQ(s.inject_storage_fault(StorageFault::torn_tail, 1),
            StorageFault::none);
  const auto report = s.recover_records();
  // key (10) + base (100) + delta (20): the whole area is the envelope.
  EXPECT_EQ(report.replayed_bytes, 130u);
  EXPECT_EQ(report.segments_scanned, 1u);
  EXPECT_EQ(s.stats().recovery_replayed_bytes.load(), 130u);
  EXPECT_EQ(s.stats().recovery_segments.load(), 1u);
}

// ---------------------------------------------------------------------------
// Platform level: crashes + injected storage faults, exactly-once oracle
// ---------------------------------------------------------------------------

struct RunOutcome {
  serial::Bytes final_agent;
  bool done = false;
  std::int64_t visits = 0;
  std::uint64_t checkpoints = 0;
  std::uint64_t recovery_replayed_bytes = 0;
};

struct RunSpec {
  int steps = 24;
  bool segmented = true;
  bool crash = false;
  StorageFault fault = StorageFault::none;
  std::uint32_t compaction_interval = 4;
  std::size_t checkpoint_interval_bytes = 0;
  std::uint64_t seed = 9;
};

RunOutcome run_workload(const RunSpec& spec) {
  PlatformConfig cfg;
  cfg.incremental_commit = true;
  cfg.compaction_interval_steps = spec.compaction_interval;
  cfg.discard_log_on_top_level = false;
  cfg.segmented_log = spec.segmented;
  cfg.segment_bytes = 2048;
  cfg.checkpoint_interval_bytes = spec.checkpoint_interval_bytes;
  cfg.storage_fault = spec.fault;
  TestWorld w(cfg, /*node_count=*/1, spec.seed);
  harness::register_workload(w.platform);
  auto ag = std::make_unique<WorkloadAgent>();
  Itinerary tour;
  for (int s = 0; s < spec.steps; ++s) {
    tour.step("spend_logged", TestWorld::n(1));
  }
  Itinerary main_it;
  main_it.sub(std::move(tour));
  ag->itinerary() = std::move(main_it);
  if (spec.crash) {
    // Three crashes spread over the run; with compaction_interval 4 and
    // one ~200us-service step at a time, some land right around a
    // record_reset (compaction) and — with checkpoints armed — inside
    // checkpoint windows.
    w.faults.crash_at(TestWorld::n(1), /*at=*/900, /*downtime=*/4'000);
    w.faults.crash_at(TestWorld::n(1), /*at=*/9'000, /*downtime=*/4'000);
    w.faults.crash_at(TestWorld::n(1), /*at=*/21'000, /*downtime=*/4'000);
  }
  auto id = w.platform.launch(std::move(ag));
  EXPECT_TRUE(id.is_ok());
  EXPECT_TRUE(w.platform.run_until_finished(id.value()));
  RunOutcome out;
  const auto& o = w.platform.outcome(id.value());
  out.done = o.state == AgentOutcome::State::done;
  out.final_agent = o.final_agent;
  const auto decoded = w.platform.decode(o.final_agent);
  out.visits = decoded->data().weak("visits").as_int();
  const auto& stats = w.platform.node(TestWorld::n(1)).storage().stats();
  out.checkpoints = stats.checkpoints_completed.load();
  out.recovery_replayed_bytes = stats.recovery_replayed_bytes.load();
  return out;
}

TEST(RecoveryPlatformTest, SegmentedMatchesClassicBitForBit) {
  RunSpec seg;
  RunSpec classic;
  classic.segmented = false;
  const auto a = run_workload(seg);
  const auto b = run_workload(classic);
  ASSERT_TRUE(a.done);
  ASSERT_TRUE(b.done);
  // The durable representation is invisible to execution semantics.
  EXPECT_EQ(a.final_agent, b.final_agent);
  EXPECT_EQ(a.visits, 24);
}

TEST(RecoveryPlatformTest, CrashNearCompactionPreservesExactlyOnce) {
  // Crashes land around record_reset compactions (interval 4). Across 3
  // randomized seeds: the agent completes, every step ran exactly once
  // (visits == steps) and the terminal image matches the no-crash oracle.
  for (std::uint64_t seed : {9ull, 23ull, 57ull}) {
    RunSpec clean;
    clean.seed = seed;
    RunSpec crashed = clean;
    crashed.crash = true;
    const auto oracle = run_workload(clean);
    const auto recovered = run_workload(crashed);
    ASSERT_TRUE(oracle.done) << "seed " << seed;
    ASSERT_TRUE(recovered.done) << "seed " << seed;
    EXPECT_EQ(recovered.visits, 24) << "seed " << seed;
    EXPECT_EQ(recovered.final_agent, oracle.final_agent) << "seed " << seed;
    EXPECT_GT(recovered.recovery_replayed_bytes, 0u);
  }
}

TEST(RecoveryPlatformTest, TornTailInjectionRecoversBitIdentically) {
  for (std::uint64_t seed : {9ull, 23ull, 57ull}) {
    RunSpec clean;
    clean.seed = seed;
    RunSpec torn = clean;
    torn.crash = true;
    torn.fault = StorageFault::torn_tail;
    const auto oracle = run_workload(clean);
    const auto recovered = run_workload(torn);
    ASSERT_TRUE(recovered.done) << "seed " << seed;
    EXPECT_EQ(recovered.visits, 24) << "seed " << seed;
    EXPECT_EQ(recovered.final_agent, oracle.final_agent) << "seed " << seed;
  }
}

TEST(RecoveryPlatformTest, CheckpointsCompleteAndCrashMidCheckpointFallsBack) {
  // Tiny checkpoint interval: every group-commit flush begins one, so the
  // crashes land inside / between checkpoint windows; torn_checkpoint
  // additionally corrupts the newest completed generation at crash time.
  for (std::uint64_t seed : {9ull, 23ull, 57ull}) {
    RunSpec clean;
    clean.seed = seed;
    clean.checkpoint_interval_bytes = 256;
    RunSpec crashed = clean;
    crashed.crash = true;
    crashed.fault = StorageFault::torn_checkpoint;
    const auto oracle = run_workload(clean);
    const auto recovered = run_workload(crashed);
    ASSERT_TRUE(oracle.done) << "seed " << seed;
    ASSERT_TRUE(recovered.done) << "seed " << seed;
    EXPECT_GT(oracle.checkpoints, 0u) << "seed " << seed;
    EXPECT_EQ(recovered.visits, 24) << "seed " << seed;
    EXPECT_EQ(recovered.final_agent, oracle.final_agent) << "seed " << seed;
  }
}

TEST(RecoveryPlatformTest, BitFlipInjectionHardFailsLoudly) {
  // Mid-log damage must never be silently absorbed: recovery throws out
  // of the crash/recover event instead of serving a corrupt image.
  RunSpec spec;
  spec.crash = true;
  spec.fault = StorageFault::bit_flip;
  EXPECT_THROW(run_workload(spec), CorruptionError);
}

TEST(RecoveryPlatformTest, FaultMatrixFromEnvironment) {
  // CI fault matrix: MAR_STORAGE_FAULT ∈ {torn_tail, bit_flip,
  // torn_checkpoint} re-runs the randomized kill workload under that
  // injection. Recoverable faults must stay bit-identical to the oracle;
  // bit_flip must hard-fail.
  const char* env = std::getenv("MAR_STORAGE_FAULT");
  if (env == nullptr || *env == '\0') {
    GTEST_SKIP() << "MAR_STORAGE_FAULT not set";
  }
  const auto fault = storage::storage_fault_from_string(env);
  ASSERT_TRUE(fault.has_value()) << "bad MAR_STORAGE_FAULT: " << env;
  RunSpec spec;
  spec.crash = true;
  spec.fault = *fault;
  if (*fault == StorageFault::torn_checkpoint) {
    spec.checkpoint_interval_bytes = 256;
  }
  if (*fault == StorageFault::bit_flip) {
    EXPECT_THROW(run_workload(spec), CorruptionError);
    return;
  }
  RunSpec clean = spec;
  clean.crash = false;
  clean.fault = StorageFault::none;
  const auto oracle = run_workload(clean);
  const auto recovered = run_workload(spec);
  ASSERT_TRUE(recovered.done);
  EXPECT_EQ(recovered.visits, 24);
  EXPECT_EQ(recovered.final_agent, oracle.final_agent);
}

}  // namespace
}  // namespace mar
