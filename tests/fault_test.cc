// Fault-injection tests: the exactly-once and eventual-rollback guarantees
// under transient node crashes (the paper's fault model, Sec. 4.3).
#include <gtest/gtest.h>

#include "harness/agents.h"
#include "harness/world.h"

namespace mar {
namespace {

using agent::Itinerary;
using agent::PlatformConfig;
using agent::RollbackStrategy;
using harness::TestWorld;
using harness::WorkloadAgent;
using harness::register_workload;

Itinerary single_sub(std::vector<std::pair<std::string, int>> steps) {
  Itinerary sub;
  for (auto& [method, node] : steps) sub.step(method, TestWorld::n(node));
  Itinerary main;
  main.sub(std::move(sub));
  return main;
}

WorkloadAgent* as_workload(agent::Agent* a) {
  auto* wl = dynamic_cast<WorkloadAgent*>(a);
  EXPECT_NE(wl, nullptr);
  return wl;
}

TEST(FaultTest, StepSurvivesExecutingNodeCrash) {
  TestWorld w;
  register_workload(w.platform);
  w.open_account(2, "acct", 500);

  auto agent = std::make_unique<WorkloadAgent>();
  agent->itinerary() = single_sub({{"noop", 1}, {"withdraw", 2}, {"noop", 3}});
  // Crash N2 around the time the agent arrives, recover shortly after.
  w.faults.crash_at(TestWorld::n(2), 2'000, 300'000);

  auto id = w.platform.launch(std::move(agent));
  ASSERT_TRUE(id.is_ok());
  ASSERT_TRUE(w.platform.run_until_finished(id.value()));
  ASSERT_EQ(w.platform.outcome(id.value()).state,
            agent::AgentOutcome::State::done);
  // Exactly-once: despite crash and restart, one withdraw committed.
  EXPECT_EQ(resource::Bank::balance_in(w.committed(2, "bank"), "acct"), 400);
  auto fin = w.platform.decode(w.platform.outcome(id.value()).final_agent);
  EXPECT_EQ(as_workload(fin.get())->cash(), 100);
}

TEST(FaultTest, RepeatedCrashesDoNotDuplicateEffects) {
  TestWorld w;
  register_workload(w.platform);
  for (int n = 1; n <= 4; ++n) w.open_account(n, "acct", 1000);

  auto agent = std::make_unique<WorkloadAgent>();
  agent->itinerary() = single_sub(
      {{"withdraw", 1}, {"withdraw", 2}, {"withdraw", 3}, {"withdraw", 4}});
  // A rolling series of crashes across all nodes while the agent runs.
  for (int n = 1; n <= 4; ++n) {
    w.faults.crash_at(TestWorld::n(n),
                      1'000 + static_cast<sim::TimeUs>(n) * 40'000, 150'000);
    w.faults.crash_at(TestWorld::n(n),
                      900'000 + static_cast<sim::TimeUs>(n) * 70'000,
                      120'000);
  }
  auto id = w.platform.launch(std::move(agent));
  ASSERT_TRUE(id.is_ok());
  ASSERT_TRUE(w.platform.run_until_finished(id.value()));
  ASSERT_EQ(w.platform.outcome(id.value()).state,
            agent::AgentOutcome::State::done);
  for (int n = 1; n <= 4; ++n) {
    EXPECT_EQ(resource::Bank::balance_in(w.committed(n, "bank"), "acct"), 900)
        << "node " << n;
  }
  auto fin = w.platform.decode(w.platform.outcome(id.value()).final_agent);
  EXPECT_EQ(as_workload(fin.get())->cash(), 400);
}

TEST(FaultTest, RollbackCompletesDespiteCrashOfCompensationNode) {
  for (auto strategy :
       {RollbackStrategy::basic, RollbackStrategy::optimized}) {
    PlatformConfig cfg;
    cfg.strategy = strategy;
    TestWorld w(cfg);
    register_workload(w.platform);
    w.open_account(1, "acct", 1000);
    w.open_account(2, "acct", 1000);

    auto agent = std::make_unique<WorkloadAgent>();
    agent->itinerary() =
        single_sub({{"withdraw", 1}, {"withdraw", 2}, {"noop", 3}});
    agent->set_trigger("noop", 3, "sub", 0);
    auto id = w.platform.launch(std::move(agent));
    ASSERT_TRUE(id.is_ok());

    // Crash the compensation nodes while the rollback is under way.
    w.faults.crash_at(TestWorld::n(2), 8'000, 400'000);
    w.faults.crash_at(TestWorld::n(1), 20'000, 600'000);

    ASSERT_TRUE(w.platform.run_until_finished(id.value()));
    ASSERT_EQ(w.platform.outcome(id.value()).state,
              agent::AgentOutcome::State::done)
        << "strategy=" << static_cast<int>(strategy)
        << " status=" << w.platform.outcome(id.value()).status;
    // Net effect after rollback + re-run: exactly one withdraw per node.
    EXPECT_EQ(resource::Bank::balance_in(w.committed(1, "bank"), "acct"),
              900);
    EXPECT_EQ(resource::Bank::balance_in(w.committed(2, "bank"), "acct"),
              900);
    EXPECT_EQ(w.trace.count(TraceKind::restore), 1u);
  }
}

TEST(FaultTest, AgentRunsUnderRandomTransientCrashes) {
  // Property-style soak: random crash/recover processes on every node must
  // never violate exactly-once effects or block the agent forever.
  for (std::uint64_t seed : {11ull, 23ull, 57ull, 91ull}) {
    PlatformConfig cfg;
    cfg.strategy = RollbackStrategy::optimized;
    TestWorld w(cfg, /*node_count=*/5, seed);
    register_workload(w.platform);
    for (int n = 1; n <= 5; ++n) {
      w.open_account(n, "acct", 1000);
      w.publish(n, "info", serial::Value("n" + std::to_string(n)));
    }
    auto agent = std::make_unique<WorkloadAgent>();
    agent->itinerary() = single_sub({{"withdraw", 1},
                                     {"collect", 2},
                                     {"withdraw", 3},
                                     {"spend_cash", 4},
                                     {"noop", 5}});
    agent->set_trigger("noop", 5, "sub", 0);

    Rng rng(seed);
    net::FaultInjector::CrashPlan plan;
    plan.mean_time_between_crashes_us = 500'000;
    plan.mean_downtime_us = 100'000;
    plan.horizon_us = 20'000'000;
    w.faults.random_crashes(w.net.node_ids(), rng, plan);

    auto id = w.platform.launch(std::move(agent));
    ASSERT_TRUE(id.is_ok());
    ASSERT_TRUE(w.platform.run_until_finished(id.value())) << "seed " << seed;
    ASSERT_EQ(w.platform.outcome(id.value()).state,
              agent::AgentOutcome::State::done)
        << "seed " << seed
        << " status=" << w.platform.outcome(id.value()).status;
    // Rolled back once, re-ran once: exactly one net withdraw per bank.
    EXPECT_EQ(resource::Bank::balance_in(w.committed(1, "bank"), "acct"), 900)
        << "seed " << seed;
    EXPECT_EQ(resource::Bank::balance_in(w.committed(3, "bank"), "acct"), 900)
        << "seed " << seed;
    auto fin = w.platform.decode(w.platform.outcome(id.value()).final_agent);
    auto* wl = as_workload(fin.get());
    // collect restored + refilled exactly once.
    EXPECT_EQ(wl->results().as_list().size(), 1u) << "seed " << seed;
    // cash: (+100 +100 -25) after one clean re-run.
    EXPECT_EQ(wl->cash(), 175) << "seed " << seed;
  }
}

TEST(FaultTest, LinkOutageOnlyDelaysExecution) {
  TestWorld w;
  register_workload(w.platform);
  w.publish(2, "info", serial::Value("x"));
  auto agent = std::make_unique<WorkloadAgent>();
  agent->itinerary() = single_sub({{"noop", 1}, {"collect", 2}});
  w.faults.link_down_at(TestWorld::n(1), TestWorld::n(2), 0, 2'000'000);

  auto id = w.platform.launch(std::move(agent));
  ASSERT_TRUE(id.is_ok());
  ASSERT_TRUE(w.platform.run_until_finished(id.value()));
  ASSERT_EQ(w.platform.outcome(id.value()).state,
            agent::AgentOutcome::State::done);
  // Completion must postdate the outage.
  EXPECT_GT(w.platform.outcome(id.value()).finished_at, 2'000'000u);
}

TEST(FaultTest, AlternativeNodeUsedWhenPrimaryStaysDown) {
  PlatformConfig cfg;
  cfg.stage_timeout_us = 300'000;
  TestWorld w(cfg);
  register_workload(w.platform);
  w.publish(2, "info", serial::Value("primary"));
  w.publish(3, "info", serial::Value("alternate"));

  auto agent = std::make_unique<WorkloadAgent>();
  Itinerary sub;
  sub.step("noop", TestWorld::n(1));
  // Step may run on N2 (primary) or N3 (alternative) — ref [11]'s
  // fault-tolerant step execution.
  sub.step("collect", {TestWorld::n(2), TestWorld::n(3)});
  Itinerary main;
  main.sub(std::move(sub));
  agent->itinerary() = std::move(main);

  // N2 goes down before the agent can reach it and stays down a long time.
  w.faults.crash_at(TestWorld::n(2), 100, 60'000'000);

  auto id = w.platform.launch(std::move(agent));
  ASSERT_TRUE(id.is_ok());
  ASSERT_TRUE(w.platform.run_until_finished(id.value()));
  ASSERT_EQ(w.platform.outcome(id.value()).state,
            agent::AgentOutcome::State::done);
  auto fin = w.platform.decode(w.platform.outcome(id.value()).final_agent);
  auto* wl = as_workload(fin.get());
  ASSERT_EQ(wl->results().as_list().size(), 1u);
  EXPECT_EQ(wl->results().as_list()[0].as_string(), "alternate");
  EXPECT_EQ(w.platform.outcome(id.value()).final_node, TestWorld::n(3));
}

TEST(FaultTest, CompensationRunsOnAlternativeNodeWhenPrimaryStaysDown) {
  // Sec. 4.3's closing discussion: "provide the information, on which
  // nodes the rollback of a step can be performed alternatively ... in
  // the end-of-step entry. Then a fault-tolerant execution of the
  // rollback ... can be realised." The EOS entry carries the step's
  // alternative locations; the basic algorithm rotates through them when
  // the compensation transaction's node is unreachable.
  PlatformConfig cfg;
  cfg.strategy = RollbackStrategy::basic;  // forces agent travel for CTs
  cfg.stage_timeout_us = 300'000;
  TestWorld w(cfg, /*node_count=*/5);
  register_workload(w.platform);

  auto agent = std::make_unique<WorkloadAgent>();
  Itinerary sub;
  // spend_cash logs only an agent compensation entry, so its CT is sound
  // on any node that can host the agent.
  sub.step("spend_cash", {TestWorld::n(2), TestWorld::n(3)});
  sub.step("noop", TestWorld::n(4));
  sub.step("noop", TestWorld::n(5));
  Itinerary main;
  main.sub(std::move(sub));
  agent->itinerary() = std::move(main);
  agent->set_trigger("noop", 3, "abandon", 0);

  // N2 executes the step and commits it (~3.6 ms), then dies for a long
  // time, before the rollback's agent transfer can reach it — the
  // rollback must move the compensation to the alternative N3.
  w.faults.crash_at(TestWorld::n(2), 4'500, 60'000'000);

  auto id = w.platform.launch(std::move(agent));
  ASSERT_TRUE(id.is_ok());
  ASSERT_TRUE(w.platform.run_until_finished(id.value()));
  ASSERT_EQ(w.platform.outcome(id.value()).state,
            agent::AgentOutcome::State::done);
  auto fin = w.platform.decode(w.platform.outcome(id.value()).final_agent);
  // The spend was compensated (cash restored to 0 from -25), quickly —
  // via the alternative, not by waiting out the 60 s outage.
  EXPECT_EQ(as_workload(fin.get())->cash(), 0);
  EXPECT_LT(w.platform.outcome(id.value()).finished_at, 10'000'000u);
  // The compensation transaction committed on N3, not the dead N2.
  bool comp_on_alternative = false;
  for (const auto& e : w.trace.of_kind(TraceKind::comp_begin)) {
    if (e.node == 3) comp_on_alternative = true;
    EXPECT_NE(e.node, 2u);
  }
  EXPECT_TRUE(comp_on_alternative);
}

}  // namespace
}  // namespace mar
