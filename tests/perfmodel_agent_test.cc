// Unit tests for the performance model (ref [16]) and full-agent
// serialization round trips.
#include <gtest/gtest.h>

#include "agent/agent.h"
#include "harness/agents.h"
#include "perfmodel/perfmodel.h"
#include "serial/serializable.h"

namespace mar {
namespace {

// --------------------------------------------------------------------------
// perfmodel
// --------------------------------------------------------------------------

TEST(PerfModelTest, RpcScalesLinearlyWithInteractions) {
  perfmodel::NetworkParams np;
  perfmodel::TaskParams task;
  task.interactions = 1;
  const double one = perfmodel::rpc_time_us(np, task);
  task.interactions = 10;
  EXPECT_DOUBLE_EQ(perfmodel::rpc_time_us(np, task), 10 * one);
}

TEST(PerfModelTest, MigrationAmortizesInteractions) {
  perfmodel::NetworkParams np;
  perfmodel::TaskParams task;
  task.interactions = 1;
  const double one = perfmodel::migration_time_us(np, task);
  task.interactions = 10;
  // Only server time grows; transfers are paid once.
  EXPECT_NEAR(perfmodel::migration_time_us(np, task),
              one + 9 * task.server_time_us, 1e-9);
}

TEST(PerfModelTest, DecisionFlipsWithInteractionCount) {
  perfmodel::NetworkParams np;
  perfmodel::TaskParams task;
  task.agent_bytes = 65536;
  task.interactions = 1;
  EXPECT_EQ(perfmodel::choose(np, task), perfmodel::Strategy::rpc);
  task.interactions = 200;
  EXPECT_EQ(perfmodel::choose(np, task), perfmodel::Strategy::migrate);
}

TEST(PerfModelTest, CrossoverSeparatesRegimes) {
  perfmodel::NetworkParams np;
  perfmodel::TaskParams task;
  task.agent_bytes = 32768;
  const double crossover = perfmodel::crossover_interactions(np, task);
  ASSERT_GT(crossover, 0);
  task.interactions = static_cast<std::int64_t>(crossover) + 2;
  EXPECT_EQ(perfmodel::choose(np, task), perfmodel::Strategy::migrate);
  task.interactions =
      std::max<std::int64_t>(1, static_cast<std::int64_t>(crossover) - 2);
  EXPECT_EQ(perfmodel::choose(np, task), perfmodel::Strategy::rpc);
}

TEST(PerfModelTest, CrossoverGrowsWithAgentSize) {
  perfmodel::NetworkParams np;
  perfmodel::TaskParams small;
  small.agent_bytes = 1024;
  perfmodel::TaskParams big;
  big.agent_bytes = 1024 * 1024;
  EXPECT_LT(perfmodel::crossover_interactions(np, small),
            perfmodel::crossover_interactions(np, big));
}

TEST(PerfModelTest, SelectivityReducesReturnCost) {
  perfmodel::NetworkParams np;
  perfmodel::TaskParams task;
  task.result_bytes = 1e6;
  task.selectivity = 1.0;
  const double all = perfmodel::migration_time_us(np, task);
  task.selectivity = 0.01;
  EXPECT_LT(perfmodel::migration_time_us(np, task), all);
}

TEST(PerfModelTest, RpcNeverLosesWhenInteractionsAreFree) {
  // Server time cancels out of the crossover (both strategies pay it per
  // interaction); only when the per-interaction NETWORK cost is zero can
  // RPC never lose.
  perfmodel::NetworkParams np;
  np.latency_us = 0;
  perfmodel::TaskParams task;
  task.request_bytes = 0;
  task.reply_bytes = 0;
  EXPECT_LT(perfmodel::crossover_interactions(np, task), 0.0);
}

TEST(PerfModelTest, CrossoverIndependentOfServerTime) {
  perfmodel::NetworkParams np;
  perfmodel::TaskParams a;
  a.server_time_us = 1;
  perfmodel::TaskParams b;
  b.server_time_us = 100'000;
  // (a + s + b) - s is subject to rounding for large s: compare loosely.
  EXPECT_NEAR(perfmodel::crossover_interactions(np, a),
              perfmodel::crossover_interactions(np, b), 1e-6);
}

// --------------------------------------------------------------------------
// Agent capture / re-instantiation
// --------------------------------------------------------------------------

TEST(AgentSerializationTest, FullStateRoundTrips) {
  harness::WorkloadAgent agent;
  agent.set_id(AgentId(77));
  agent.set_run_state(agent::Agent::RunState::running);
  agent::Itinerary sub;
  sub.step("withdraw", NodeId(1)).step("noop", {NodeId(2), NodeId(3)});
  agent::Itinerary main;
  main.sub(std::move(sub));
  agent.itinerary() = std::move(main);
  agent.set_position({0, 1});
  agent.data().weak("cash") = std::int64_t{500};
  agent.data().strong("results").push_back("finding");
  agent.savepoint_stack().push_back(agent::SavepointStackEntry{
      SavepointId(1), rollback::SavepointOrigin::sub_itinerary, 1});
  (void)agent.allocate_savepoint_id();
  agent.log().push(rollback::BeginOfStepEntry{NodeId(1), "withdraw"});
  agent.set_force_full_savepoint(true);
  agent.set_last_savepoint_strong(agent.data().strong_image());

  agent::AgentTypeRegistry registry;
  registry.register_type<harness::WorkloadAgent>("workload");
  const auto bytes = agent::encode_agent(agent);
  auto back = agent::decode_agent(registry, bytes);

  EXPECT_EQ(back->id(), AgentId(77));
  EXPECT_EQ(back->run_state(), agent::Agent::RunState::running);
  EXPECT_EQ(back->position(), (rollback::Position{0, 1}));
  EXPECT_EQ(back->data().weak("cash").as_int(), 500);
  EXPECT_EQ(back->data().strong("results").as_list()[0].as_string(),
            "finding");
  ASSERT_EQ(back->savepoint_stack().size(), 1u);
  EXPECT_EQ(back->savepoint_stack()[0].id, SavepointId(1));
  EXPECT_EQ(back->log().size(), 1u);
  EXPECT_TRUE(back->force_full_savepoint());
  // Savepoint-id allocation continues where it left off.
  EXPECT_EQ(back->allocate_savepoint_id(), SavepointId(2));
  EXPECT_EQ(back->itinerary().step_at({0, 1}).locations.size(), 2u);
}

TEST(AgentSerializationTest, EncodedSizeTracksPayload) {
  harness::WorkloadAgent small;
  harness::WorkloadAgent big;
  big.data().strong("results").push_back(
      serial::Value(serial::Bytes(10'000, std::uint8_t{1})));
  EXPECT_GT(agent::encode_agent(big).size(),
            agent::encode_agent(small).size() + 10'000);
}

TEST(AgentSerializationTest, SubSavepointLookup) {
  harness::WorkloadAgent agent;
  auto& stack = agent.savepoint_stack();
  stack.push_back({SavepointId(1), rollback::SavepointOrigin::sub_itinerary, 1});
  stack.push_back({SavepointId(2), rollback::SavepointOrigin::adhoc, 1});
  stack.push_back({SavepointId(3), rollback::SavepointOrigin::sub_itinerary, 2});
  EXPECT_EQ(agent.sub_savepoint(0), SavepointId(3));
  EXPECT_EQ(agent.sub_savepoint(1), SavepointId(1));
  EXPECT_FALSE(agent.sub_savepoint(2).valid());
}

}  // namespace
}  // namespace mar
