// Adaptive rollback strategy (Sec. 4.4.1 "Further optimizations"): the
// platform weighs migrating the agent against shipping a mixed step's
// operation entries + weak-state snapshot to the resource node, using the
// ref [16] cost structure on the actual link parameters.
#include <gtest/gtest.h>

#include "harness/agents.h"
#include "harness/world.h"

namespace mar {
namespace {

using agent::Itinerary;
using agent::PlatformConfig;
using agent::RollbackStrategy;
using harness::TestWorld;
using harness::WorkloadAgent;
using harness::register_workload;

Itinerary single_sub(std::vector<std::pair<std::string, int>> steps) {
  Itinerary sub;
  for (auto& [method, node] : steps) sub.step(method, TestWorld::n(node));
  Itinerary main;
  main.sub(std::move(sub));
  return main;
}

struct RunOutcome {
  bool done = false;
  std::uint64_t rollback_transfers = 0;
  std::uint64_t mixed_ships = 0;
  std::int64_t touches = 0;
  serial::Value strong;
  std::map<int, serial::Value> dir;
};

/// A run whose rollback crosses `mixed_steps` mixed steps. `strong_bytes`
/// pads the strongly reversible state (which only the MIGRATE option has
/// to carry); `weak_bytes` pads the weakly reversible state (which the
/// SHIP option pays for twice — to the resource node and back — while a
/// migration carries it once). The rollback trigger `mode` is "sub"
/// (re-execute the sub afterwards) or "abandon" (skip it).
RunOutcome run(RollbackStrategy strategy, int mixed_steps,
               std::int64_t strong_bytes, std::int64_t weak_bytes,
               const std::string& mode = "sub") {
  PlatformConfig cfg;
  cfg.strategy = strategy;
  TestWorld w(cfg, mixed_steps + 2, 11);
  register_workload(w.platform);

  auto agent = std::make_unique<WorkloadAgent>();
  std::vector<std::pair<std::string, int>> steps;
  steps.emplace_back(strong_bytes >= weak_bytes ? "grow_strong" : "grow_weak",
                     1);
  for (int i = 0; i < mixed_steps; ++i) {
    steps.emplace_back("touch_mixed", 2 + i);
  }
  steps.emplace_back("noop", mixed_steps + 2);
  agent->itinerary() = single_sub(std::move(steps));
  agent->set_trigger("noop", mixed_steps + 2, mode, 0);
  agent->set_config("strong_bytes", strong_bytes);
  agent->set_config("weak_bytes", weak_bytes);
  agent->set_config("param_bytes", 16);

  auto id = w.platform.launch(std::move(agent));
  EXPECT_TRUE(id.is_ok());
  EXPECT_TRUE(w.platform.run_until_finished(id.value()));

  RunOutcome out;
  out.done = w.platform.outcome(id.value()).state ==
             agent::AgentOutcome::State::done;
  out.rollback_transfers = w.platform.rollback_transfers();
  out.mixed_ships = w.platform.mixed_ships();
  if (out.done) {
    auto fin = w.platform.decode(w.platform.outcome(id.value()).final_agent);
    out.touches = fin->data().weak("touches").as_int();
    out.strong = fin->data().strong_image();
  }
  for (int n = 1; n <= mixed_steps + 2; ++n) {
    out.dir[n] = w.committed(n, "dir");
  }
  return out;
}

// With a heavyweight agent (fat strong state) and tiny undo parameters,
// shipping the compensation objects is cheaper than moving the agent: the
// adaptive strategy must perform zero rollback agent transfers.
TEST(AdaptiveStrategy, ShipsMixedCompensationForHeavyAgents) {
  const auto out = run(RollbackStrategy::adaptive, 3,
                       /*strong_bytes=*/16 * 1024, /*weak_bytes=*/16);
  ASSERT_TRUE(out.done);
  EXPECT_EQ(out.rollback_transfers, 0u);
  EXPECT_EQ(out.mixed_ships, 3u);
}

// With a bulky WEAK state, shipping pays for it twice (snapshot there,
// updated snapshot back) while a migration carries it once: migrating
// wins and no shipments happen.
TEST(AdaptiveStrategy, MigratesWhenWeakStateDominates) {
  const auto out = run(RollbackStrategy::adaptive, 3,
                       /*strong_bytes=*/8, /*weak_bytes=*/32 * 1024);
  ASSERT_TRUE(out.done);
  EXPECT_EQ(out.mixed_ships, 0u);
  EXPECT_GE(out.rollback_transfers, 3u);
}

// The optimized strategy always migrates for mixed steps, whatever the
// sizes — the baseline the adaptive decision improves on.
TEST(AdaptiveStrategy, OptimizedAlwaysMigratesMixedSteps) {
  const auto out = run(RollbackStrategy::optimized, 3, 16 * 1024, 16);
  ASSERT_TRUE(out.done);
  EXPECT_EQ(out.mixed_ships, 0u);
  EXPECT_GE(out.rollback_transfers, 3u);
}

// Whatever the decision, the adaptive strategy is a pure optimization: the
// final augmented state must match the basic algorithm's exactly.
class AdaptiveEquivalence
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(AdaptiveEquivalence, MatchesBasicAugmentedState) {
  const auto [strong_kb, weak_kb] = GetParam();
  const auto a = run(RollbackStrategy::basic, 2, strong_kb * 1024,
                     weak_kb * 1024 + 16);
  const auto b = run(RollbackStrategy::adaptive, 2, strong_kb * 1024,
                     weak_kb * 1024 + 16);
  ASSERT_TRUE(a.done && b.done);
  EXPECT_EQ(a.touches, b.touches);
  EXPECT_EQ(a.strong, b.strong);
  EXPECT_EQ(a.dir, b.dir);
}

INSTANTIATE_TEST_SUITE_P(Sizes, AdaptiveEquivalence,
                         ::testing::Values(std::pair{0, 0}, std::pair{16, 0},
                                           std::pair{0, 8},
                                           std::pair{16, 8}));

// The weak state produced by the remotely executed mixed compensation is
// merged back into the agent. The rollback ABANDONS the sub-itinerary so
// the compensated state is final: the `touches` counter (decremented by
// the shipped comp.untouch) must be exactly restored, and the directory
// entries removed everywhere.
TEST(AdaptiveStrategy, RemoteWeakStateMergesBack) {
  const auto out =
      run(RollbackStrategy::adaptive, 3, 16 * 1024, 16, "abandon");
  ASSERT_TRUE(out.done);
  // All three touch_mixed steps rolled back: no touch-* keys anywhere.
  for (const auto& [node, dir] : out.dir) {
    for (const auto& [key, value] : dir.at("entries").as_map()) {
      EXPECT_TRUE(key.rfind("touch-", 0) != 0)
          << "leftover " << key << " on node " << node;
    }
  }
  EXPECT_EQ(out.touches, 0);
}

// Under transient crashes of the resource node, the shipped mixed
// compensation is retried until it lands; the result must be identical to
// the fault-free run (exactly-once compensation).
TEST(AdaptiveStrategy, ShippedCompensationSurvivesCrashes) {
  PlatformConfig cfg;
  cfg.strategy = RollbackStrategy::adaptive;
  TestWorld w(cfg, 4, 17);
  register_workload(w.platform);

  auto agent = std::make_unique<WorkloadAgent>();
  agent->itinerary() = single_sub(
      {{"grow_strong", 1}, {"touch_mixed", 2}, {"touch_mixed", 3},
       {"noop", 4}});
  agent->set_trigger("noop", 4, "abandon", 0);
  agent->set_config("strong_bytes", 16 * 1024);
  agent->set_config("param_bytes", 16);

  // Crash the two resource nodes around the time the rollback runs.
  w.faults.crash_at(TestWorld::n(2), 30'000, 400'000);
  w.faults.crash_at(TestWorld::n(3), 60'000, 500'000);

  auto id = w.platform.launch(std::move(agent));
  ASSERT_TRUE(id.is_ok());
  ASSERT_TRUE(w.platform.run_until_finished(id.value()));
  ASSERT_EQ(w.platform.outcome(id.value()).state,
            agent::AgentOutcome::State::done);
  auto fin = w.platform.decode(w.platform.outcome(id.value()).final_agent);
  EXPECT_EQ(fin->data().weak("touches").as_int(), 0);
  for (int n = 2; n <= 3; ++n) {
    for (const auto& [key, value] :
         w.committed(n, "dir").at("entries").as_map()) {
      EXPECT_TRUE(key.rfind("touch-", 0) != 0) << key;
    }
  }
}

// A mixed step executed on the node the agent already sits on needs
// neither a transfer nor a shipment.
TEST(AdaptiveStrategy, LocalMixedStepNeedsNoShipment) {
  PlatformConfig cfg;
  cfg.strategy = RollbackStrategy::adaptive;
  TestWorld w(cfg, 2, 5);
  register_workload(w.platform);

  auto agent = std::make_unique<WorkloadAgent>();
  // The mixed step runs on node 2 and the rollback starts on node 2: the
  // compensation is local.
  agent->itinerary() =
      single_sub({{"touch_mixed", 2}, {"noop", 2}});
  agent->set_trigger("noop", 2, "sub", 0);
  auto id = w.platform.launch(std::move(agent));
  ASSERT_TRUE(id.is_ok());
  ASSERT_TRUE(w.platform.run_until_finished(id.value()));
  ASSERT_EQ(w.platform.outcome(id.value()).state,
            agent::AgentOutcome::State::done);
  EXPECT_EQ(w.platform.mixed_ships(), 0u);
  EXPECT_EQ(w.platform.rollback_transfers(), 0u);
}

}  // namespace
}  // namespace mar
