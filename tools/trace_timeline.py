#!/usr/bin/env python3
"""trace_timeline: stitch per-agent hop timelines from a span dump.

Input is the JSONL span stream the platform emits (bench_a7's
MAR_SPAN_DUMP, or a crash flight-recorder dump — `flight_dump` header
lines are skipped, duplicate span ids from overlapping ring dumps are
deduplicated). Each span is
  {trace_id, span_id, parent, kind, node, agent, begin_us, end_us, note}
with trace_id = agent id, hop spans chained through `parent`, and phase
spans (queue_wait / lock_wait / step_exec / commit_flush) as direct
children of their hop. Ship-side spans (convoy_wait / wire / apply)
nest inside the commit_flush window of the migrating hop and are shown
as detail, not counted as coverage (they would double-count the flush).

For every trace the tool prints the hop timeline — node, interval,
duration and the per-phase breakdown — plus a critical-path summary:
how much of the agent's end-to-end latency went to queueing, lock
waits, step execution and commit/shipping.

Usage:
  tools/trace_timeline.py DUMP.jsonl [--trace ID]
  tools/trace_timeline.py --self-check DUMP.jsonl

--self-check validates the causal structure instead of printing it:
every hop's parent resolves within its trace, every trace has exactly
one root, one trace never spans two agents, and the four coverage
phases account for >= 95% of every non-trivial hop's latency. Exit 0
when all checks hold, 1 otherwise (2 = usage).
"""

import argparse
import json
import sys
from collections import defaultdict

COVERAGE_KINDS = ("queue_wait", "lock_wait", "step_exec", "commit_flush")
DETAIL_KINDS = ("convoy_wait", "wire", "apply")
MIN_COVERAGE = 0.95
# Hops shorter than this are all-zero-phase edge cases (e.g. a hop
# consumed the instant it was enqueued); coverage is vacuous there.
TRIVIAL_HOP_US = 10


def load_spans(path):
    """Parse a span dump; returns spans deduplicated by span_id (a crash
    flight recorder dumps overlapping rings — last occurrence wins)."""
    by_id = {}
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as e:
                print(f"{path}:{lineno}: bad JSON: {e}", file=sys.stderr)
                sys.exit(2)
            if "event" in obj:  # flight_dump header line
                continue
            by_id[obj["span_id"]] = obj
    return sorted(by_id.values(), key=lambda s: s["span_id"])


def group_traces(spans):
    traces = defaultdict(list)
    for s in spans:
        traces[s["trace_id"]].append(s)
    return dict(sorted(traces.items()))


def dur(s):
    return s["end_us"] - s["begin_us"]


def hop_phases(hop, children):
    """Per-phase totals of one hop: coverage phases and ship detail."""
    phases = defaultdict(int)
    for c in children:
        if c["kind"] in COVERAGE_KINDS or c["kind"] in DETAIL_KINDS:
            phases[c["kind"]] += dur(c)
    return phases


def build_timeline(trace_spans):
    """(hops sorted by begin, children-by-parent map) of one trace."""
    children = defaultdict(list)
    for s in trace_spans:
        children[s["parent"]].append(s)
    hops = [s for s in trace_spans if s["kind"] == "hop"]
    hops.sort(key=lambda s: (s["begin_us"], s["span_id"]))
    return hops, children


def coverage_of(hop, children):
    """Fraction of the hop's latency its coverage phases explain."""
    total = dur(hop)
    if total <= 0:
        return 1.0
    covered = sum(dur(c) for c in children.get(hop["span_id"], [])
                  if c["kind"] in COVERAGE_KINDS)
    return covered / total


def print_trace(trace_id, trace_spans):
    hops, children = build_timeline(trace_spans)
    if not hops:
        print(f"trace {trace_id}: no hop spans")
        return
    agents = {s["agent"] for s in trace_spans}
    print(f"trace {trace_id} (agent {', '.join(map(str, sorted(agents)))}, "
          f"{len(hops)} hops, "
          f"{hops[0]['begin_us']}..{max(h['end_us'] for h in hops)} us)")
    header = (f"  {'hop':>3}  {'node':>4}  {'begin[us]':>10}  {'dur[us]':>8}  "
              f"{'queue':>7}  {'lock':>6}  {'exec':>7}  {'flush':>8}  "
              f"{'cov%':>5}  detail")
    print(header)
    totals = defaultdict(int)
    grand = 0
    for i, hop in enumerate(hops):
        kids = children.get(hop["span_id"], [])
        phases = hop_phases(hop, kids)
        for k in COVERAGE_KINDS:
            totals[k] += phases.get(k, 0)
        grand += dur(hop)
        cov = coverage_of(hop, children) * 100.0
        detail = " ".join(
            f"{c['kind']}={dur(c)}us" +
            (f"[{c['note']}]" if c["note"] else "")
            for c in kids if c["kind"] in DETAIL_KINDS)
        comp = " comp" if hop["note"] == "comp" else ""
        print(f"  {i:>3}  {hop['node']:>4}  {hop['begin_us']:>10}  "
              f"{dur(hop):>8}  {phases.get('queue_wait', 0):>7}  "
              f"{phases.get('lock_wait', 0):>6}  "
              f"{phases.get('step_exec', 0):>7}  "
              f"{phases.get('commit_flush', 0):>8}  {cov:>5.1f}"
              f"  {detail}{comp}")
    if grand > 0:
        parts = "  ".join(
            f"{k} {totals[k]} ({totals[k] / grand * 100.0:.1f}%)"
            for k in COVERAGE_KINDS)
        print(f"  critical path: {grand} us total = {parts}")
    print()


def self_check(path):
    spans = load_spans(path)
    if not spans:
        print(f"self-check: {path}: no spans", file=sys.stderr)
        return 1
    traces = group_traces(spans)
    problems = []
    checked_hops = 0
    for trace_id, trace_spans in traces.items():
        if trace_id == 0:
            # Node-scoped spans (recovery_replay) carry no trace id.
            continue
        ids = {s["span_id"] for s in trace_spans}
        agents = {s["agent"] for s in trace_spans}
        if len(agents) != 1:
            problems.append(
                f"trace {trace_id}: spans from {len(agents)} agents "
                f"({sorted(agents)}) — trace ids must not be shared")
        hops, children = build_timeline(trace_spans)
        if not hops:
            problems.append(f"trace {trace_id}: no hop spans")
            continue
        roots = [h for h in hops if h["parent"] == 0]
        if len(roots) != 1:
            problems.append(
                f"trace {trace_id}: {len(roots)} root hops (want exactly 1 "
                "launch hop with parent 0)")
        for h in hops:
            if h["parent"] != 0 and h["parent"] not in ids:
                problems.append(
                    f"trace {trace_id}: hop span {h['span_id']} parent "
                    f"{h['parent']} not in this trace — broken causal chain")
        for h in hops:
            if dur(h) < TRIVIAL_HOP_US:
                continue
            checked_hops += 1
            cov = coverage_of(h, children)
            if cov < MIN_COVERAGE:
                problems.append(
                    f"trace {trace_id}: hop span {h['span_id']} on node "
                    f"{h['node']} covered {cov * 100.0:.1f}% "
                    f"(< {MIN_COVERAGE * 100.0:.0f}%) of {dur(h)} us")
    for p in problems:
        print(f"self-check: {p}", file=sys.stderr)
    print(f"self-check: {len(traces)} trace(s), {checked_hops} hop(s) "
          f"checked >= {MIN_COVERAGE * 100.0:.0f}% phase coverage: "
          f"{'OK' if not problems else 'FAILED'}")
    return 0 if not problems else 1


def main():
    ap = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    ap.add_argument("dump", help="span dump (JSONL)")
    ap.add_argument("--trace", type=int, default=None,
                    help="print only this trace id")
    ap.add_argument("--self-check", action="store_true",
                    help="validate causal structure and phase coverage")
    args = ap.parse_args()

    if args.self_check:
        sys.exit(self_check(args.dump))

    spans = load_spans(args.dump)
    traces = group_traces(spans)
    if args.trace is not None:
        traces = {k: v for k, v in traces.items() if k == args.trace}
        if not traces:
            print(f"no spans for trace {args.trace}", file=sys.stderr)
            sys.exit(1)
    for trace_id, trace_spans in traces.items():
        if trace_id == 0 and args.trace != 0:
            continue  # node-scoped spans (recovery_replay)
        print_trace(trace_id, trace_spans)


if __name__ == "__main__":
    try:
        main()
    except BrokenPipeError:
        sys.exit(0)
