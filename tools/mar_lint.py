#!/usr/bin/env python3
"""mar-lint: project-specific invariant checks for src/.

Rules (each with a stable id used in messages and suppressions):

  R1 resource-key-set   Every Resource subclass declares key_set. An
                        undeclared subclass silently falls back to
                        whole-instance locking, defeating per-key
                        concurrency for that resource.
  R2 sync-scope         StableStorage::sync() is called only from the
                        commit machinery (src/tx/, src/storage/). A stray
                        sync bypasses group-commit metering and skews
                        every syncs/step figure the benches report.
  R3 encoder-reserve    A default-constructed serial::Encoder must either
                        grow into a nearby <var>.reserve(...) call or be
                        annotated `// mar-lint: small-frame`. Sized hot
                        paths use Encoder(reserve_hint): one allocation
                        per frame.
  R4 raw-random-time    No rand()/srand()/time()/std::mt19937/
                        std::random_device outside util/rng. All
                        stochastic behaviour flows through mar::Rng so
                        every run is reproducible from a seed.
  R5 trace-registered   Every TraceKind member has a to_string case and
                        every TraceKind:: use names a declared member, so
                        trace output never prints "?" for a live event.
  R6 no-blocking-wait   No blocking wait primitives (condition_variable,
                        future/promise, sleep loops) inside src/tx/ and
                        src/ship/: the commit pipeline is completion-
                        callback-driven — dwell time is expressed through
                        simulator flush timers, never by blocking the
                        caller. Timer code that must name such a
                        primitive annotates `// mar-lint: flush-timer`.
  R7 record-scope       Record-area mutators (record_reset / record_append
                        / record_erase) are called only from src/storage/
                        and src/tx/. Anywhere else must stage through the
                        tx layer (stage_record_*): a direct mutation
                        bypasses both commit atomicity and the segment-log
                        framing/checkpoint liveness accounting.
  R8 registered-stat    Every RelaxedCounter field declared outside
                        src/util/ is wired into the metrics registry
                        (its name appears in a register_counter /
                        register_gauge call somewhere in src/). An
                        unregistered stat silently vanishes from the
                        uniform metrics snapshot the benches and the
                        flight recorder report. Intentionally private
                        counters annotate
                        `// mar-lint: unregistered-stat`.

Usage:
  tools/mar_lint.py [--root REPO] [FILES...]   lint src/ (or FILES)
  tools/mar_lint.py --self-test                verify each rule fires on
                                               a seeded violation
Exit status: 0 clean, 1 findings, 2 usage/internal error.
"""

import argparse
import pathlib
import re
import sys
import tempfile

SRC_EXTENSIONS = {".h", ".cc"}
RESERVE_WINDOW = 30  # lines after a bare Encoder to find .reserve()


def strip_noise(line):
    """Remove // comments and string literal bodies (keeps the quotes)."""
    line = re.sub(r'"(?:[^"\\]|\\.)*"', '""', line)
    return re.sub(r"//.*", "", line)


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def iter_source_files(root, explicit):
    if explicit:
        for f in explicit:
            p = pathlib.Path(f)
            if p.suffix in SRC_EXTENSIONS and p.is_file():
                yield p
        return
    for p in sorted((root / "src").rglob("*")):
        if p.suffix in SRC_EXTENSIONS:
            yield p


def rel(root, path):
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


# --- R1: every Resource subclass declares key_set --------------------------

SUBCLASS_RE = re.compile(
    r"class\s+(\w+)(?:\s+final)?\s*:\s*public\s+(?:resource::)?Resource\b")


def check_resource_key_set(path, text, findings):
    classes = [(m.group(1), text[: m.start()].count("\n") + 1)
               for m in SUBCLASS_RE.finditer(text)]
    if not classes:
        return
    declares = re.search(r"\bKeySet\s+key_set\s*\(", text) is not None
    for name, line in classes:
        if not declares:
            findings.append(Finding(path, line, "R1",
                                    f"Resource subclass {name} does not "
                                    "declare key_set(); it will always "
                                    "whole-instance lock"))


# --- R2: sync() only under src/tx/ and src/storage/ ------------------------

SYNC_ALLOWED_PREFIXES = ("src/tx/", "src/storage/")
SYNC_RE = re.compile(r"\.\s*sync\s*\(\s*\)")


def check_sync_scope(relpath, path, lines, findings):
    if relpath.startswith(SYNC_ALLOWED_PREFIXES):
        return
    for i, line in enumerate(lines, 1):
        if SYNC_RE.search(strip_noise(line)):
            findings.append(Finding(path, i, "R2",
                                    "StableStorage::sync() outside the "
                                    "commit machinery (src/tx/, "
                                    "src/storage/) bypasses group-commit "
                                    "metering"))


# --- R3: default-constructed Encoder pairs with reserve or annotation ------

BARE_ENCODER_RE = re.compile(r"\bEncoder\s+(\w+)\s*;")


def check_encoder_reserve(path, lines, findings):
    for i, line in enumerate(lines, 1):
        m = BARE_ENCODER_RE.search(strip_noise(line))
        if not m:
            continue
        var = m.group(1)
        here_or_above = line + (lines[i - 2] if i >= 2 else "")
        if "mar-lint: small-frame" in here_or_above:
            continue
        window = lines[i: i + RESERVE_WINDOW]
        if any(re.search(rf"\b{re.escape(var)}\s*\.\s*reserve\s*\(", w)
               for w in window):
            continue
        findings.append(Finding(path, i, "R3",
                                f"default-constructed Encoder `{var}` has "
                                "no reserve hint; pass "
                                "Encoder(encoded_size) or annotate "
                                "`// mar-lint: small-frame`"))


# --- R4: raw randomness / wall-clock outside util/rng ----------------------

RNG_ALLOWED_PREFIXES = ("src/util/rng",)
RAW_RANDOM_RE = re.compile(
    r"(?:(?<![\w.:>])(?:rand|srand|time)\s*\(|std::mt19937|"
    r"std::random_device)")


def check_raw_random(relpath, path, lines, findings):
    if relpath.startswith(RNG_ALLOWED_PREFIXES):
        return
    for i, line in enumerate(lines, 1):
        m = RAW_RANDOM_RE.search(strip_noise(line))
        if m:
            findings.append(Finding(path, i, "R4",
                                    f"raw `{m.group(0).strip()}` outside "
                                    "util/rng breaks seed-reproducibility; "
                                    "draw from mar::Rng"))


# --- R6: no blocking wait primitives in the commit pipeline ----------------

NO_BLOCKING_PREFIXES = ("src/tx/", "src/ship/")
BLOCKING_WAIT_RE = re.compile(
    r"(?:std::condition_variable|std::this_thread::sleep_(?:for|until)|"
    r"std::future\b|std::promise\b|(?<![\w.:>])usleep\s*\(|"
    r"\.\s*wait(?:_for|_until)?\s*\()")


def check_no_blocking_wait(relpath, path, lines, findings):
    if not relpath.startswith(NO_BLOCKING_PREFIXES):
        return
    for i, line in enumerate(lines, 1):
        here_or_above = line + (lines[i - 2] if i >= 2 else "")
        if "mar-lint: flush-timer" in here_or_above:
            continue
        m = BLOCKING_WAIT_RE.search(strip_noise(line))
        if m:
            findings.append(Finding(path, i, "R6",
                                    f"blocking wait `{m.group(0).strip()}` "
                                    "in the commit pipeline; use completion "
                                    "callbacks / simulator flush timers (or "
                                    "annotate `// mar-lint: flush-timer`)"))


# --- R7: record-area mutators only under src/storage/ and src/tx/ ----------

RECORD_ALLOWED_PREFIXES = ("src/storage/", "src/tx/")
# `\.` anchors to a member call, so stage_record_* (the tx staging API)
# never matches: the char after the dot is `s`, not `r`.
RECORD_MUTATOR_RE = re.compile(r"\.\s*record_(?:reset|append|erase)\s*\(")


def check_record_scope(relpath, path, lines, findings):
    if relpath.startswith(RECORD_ALLOWED_PREFIXES):
        return
    for i, line in enumerate(lines, 1):
        m = RECORD_MUTATOR_RE.search(strip_noise(line))
        if m:
            findings.append(Finding(path, i, "R7",
                                    f"record mutator `{m.group(0).strip()})` "
                                    "outside src/storage//src/tx/ bypasses "
                                    "commit atomicity and segment-log "
                                    "liveness; stage via stage_record_*"))


# --- R8: RelaxedCounter fields registered with the metrics registry --------

COUNTER_FIELD_RE = re.compile(r"\bRelaxedCounter\s+(\w+)\s*;")
REGISTER_CALL_RE = re.compile(
    r"register_(?:counter|gauge)\s*\(([^;]*?)\)\s*;", re.DOTALL)
COUNTER_EXEMPT_PREFIXES = ("src/util/",)


def collect_registered_names(root):
    """Every identifier appearing inside a register_counter/register_gauge
    call, across all of src/ — the registered name string AND the field
    expression both mention the counter's field name."""
    names = set()
    for p in iter_source_files(root, None):
        for m in REGISTER_CALL_RE.finditer(p.read_text()):
            names.update(re.findall(r"\w+", m.group(1)))
    return names


def check_stat_registered(root, findings):
    registered = collect_registered_names(root)
    for p in iter_source_files(root, None):
        relpath = rel(root, p)
        if relpath.startswith(COUNTER_EXEMPT_PREFIXES):
            continue
        lines = p.read_text().split("\n")
        for i, line in enumerate(lines, 1):
            m = COUNTER_FIELD_RE.search(strip_noise(line))
            if not m:
                continue
            here_or_above = line + (lines[i - 2] if i >= 2 else "")
            if "mar-lint: unregistered-stat" in here_or_above:
                continue
            if m.group(1) in registered:
                continue
            findings.append(Finding(relpath, i, "R8",
                                    f"RelaxedCounter `{m.group(1)}` is never "
                                    "registered with the metrics registry; "
                                    "wire it through register_counter / "
                                    "register_gauge (or annotate "
                                    "`// mar-lint: unregistered-stat`)"))


# --- R5: TraceKind members registered and uses valid -----------------------

TRACE_ENUM_RE = re.compile(
    r"enum\s+class\s+TraceKind\s*\{(.*?)\}", re.DOTALL)
TRACE_MEMBER_RE = re.compile(r"^\s*(\w+)\s*,?\s*(?://.*)?$")
TRACE_CASE_RE = re.compile(r"case\s+TraceKind::(\w+)")
TRACE_USE_RE = re.compile(r"TraceKind::(\w+)")


def parse_trace_kinds(root):
    header = root / "src" / "util" / "trace.h"
    if not header.is_file():
        return None, None
    m = TRACE_ENUM_RE.search(header.read_text())
    if not m:
        return None, None
    members = []
    for raw in m.group(1).split("\n"):
        token = strip_noise(raw.replace("///<", "//")).split(",")[0].strip()
        if token and re.fullmatch(r"\w+", token):
            members.append(token)
    impl = root / "src" / "util" / "trace.cc"
    cases = set(TRACE_CASE_RE.findall(impl.read_text())) \
        if impl.is_file() else set()
    return members, cases


def check_trace_registered(root, findings):
    members, cases = parse_trace_kinds(root)
    if members is None:
        return
    header = rel(root, root / "src" / "util" / "trace.h")
    for member in members:
        if member not in cases:
            findings.append(Finding(header, 1, "R5",
                                    f"TraceKind::{member} has no "
                                    "to_string case in util/trace.cc; it "
                                    "would render as \"?\""))
    declared = set(members)
    for p in iter_source_files(root, None):
        text = p.read_text()
        for i, line in enumerate(text.split("\n"), 1):
            for use in TRACE_USE_RE.findall(strip_noise(line)):
                if use not in declared:
                    findings.append(Finding(rel(root, p), i, "R5",
                                            f"TraceKind::{use} is not a "
                                            "declared trace category"))


# --- driver ----------------------------------------------------------------

def run_lint(root, explicit_files=None):
    findings = []
    for p in iter_source_files(root, explicit_files):
        relpath = rel(root, p)
        text = p.read_text()
        lines = text.split("\n")
        check_resource_key_set(relpath, text, findings)
        check_sync_scope(relpath, relpath, lines, findings)
        check_encoder_reserve(relpath, lines, findings)
        check_raw_random(relpath, relpath, lines, findings)
        check_no_blocking_wait(relpath, relpath, lines, findings)
        check_record_scope(relpath, relpath, lines, findings)
    if not explicit_files:
        check_trace_registered(root, findings)
        check_stat_registered(root, findings)
    return findings


# --- self-test -------------------------------------------------------------

SEEDED = {
    "src/resource/gadget.h": """
#include "resource/resource.h"
namespace mar::resource {
class Gadget final : public Resource {
 public:
  Result<Value> invoke(std::string_view op, const Value& p, Value& s);
};
}
""",
    "src/agent/rogue.cc": """
#include <cstdlib>
void rogue_sync_and_rand(mar::storage::StableStorage& st) {
  st.sync();
  int r = rand();
  (void)r;
  std::mt19937 gen(42);
  (void)gen;
}
serial::Bytes rogue_encode() {
  serial::Encoder enc;
  enc.write_u64(1);
  return std::move(enc).take();
}
void rogue_trace(mar::TraceSink& t) {
  t.emit(0, mar::TraceKind::bogus_kind, 0, "x");
}
void rogue_record(mar::storage::StableStorage& st) {
  st.record_append("agentimg:7", {});
}
""",
    "src/tx/rogue_wait.cc": """
#include <condition_variable>
#include <mutex>
void rogue_blocking_commit(std::condition_variable& cv,
                           std::unique_lock<std::mutex>& lk) {
  cv.wait(lk);
}
""",
    "src/net/rogue_stats.h": """
#include "util/counters.h"
namespace mar::net {
struct RogueStats {
  RelaxedCounter frames_dropped;  // never registered anywhere
};
}
""",
}

CLEAN = {
    "src/agent/good.cc": """
void good(mar::sim::Simulator& sim) {
  const auto now = sim.time();  // member access: not wall-clock time()
  (void)now;
  serial::Encoder sized(64);
  sized.write_u64(now);
  serial::Encoder grown;
  grown.reserve(128);
  serial::Encoder tiny;  // mar-lint: small-frame
  (void)tiny;
}
void good_staged_record(mar::tx::TxHandle& tx) {
  // Staging through the tx layer is the sanctioned path outside storage.
  tx.stage_record_reset("agentimg:7", {});
  tx.stage_record_append("agentimg:7", {});
  tx.stage_record_erase("agentimg:7");
}
""",
    "src/tx/good_timer.cc": """
void good_flush_timer(mar::sim::Simulator& sim, mar::FlushHelper& helper) {
  // Dwell is a simulator timer, never a blocking wait.
  sim.schedule_after(100, [] {});
  helper.cv.wait(helper.lk);  // mar-lint: flush-timer
  auto pending = helper.awaiting_.find(7);  // `awaiting_` is not a wait
  (void)pending;
}
""",
    "src/net/good_stats.h": """
#include "util/counters.h"
namespace mar::net {
struct GoodStats {
  RelaxedCounter frames_sent;
  RelaxedCounter scratch_probe;  // mar-lint: unregistered-stat
};
}
""",
    "src/net/good_stats.cc": """
void wire_metrics(mar::MetricsRegistry& m, mar::net::GoodStats& s) {
  m.register_counter("net.frames_sent", &s.frames_sent);
}
""",
}


def self_test():
    with tempfile.TemporaryDirectory(prefix="mar-lint-") as td:
        root = pathlib.Path(td)
        real_root = pathlib.Path(__file__).resolve().parent.parent
        for name in ("src/util/trace.h", "src/util/trace.cc"):
            src = real_root / name
            dst = root / name
            dst.parent.mkdir(parents=True, exist_ok=True)
            dst.write_text(src.read_text())
        for name, body in {**SEEDED, **CLEAN}.items():
            dst = root / name
            dst.parent.mkdir(parents=True, exist_ok=True)
            dst.write_text(body)

        findings = run_lint(root)
        fired = {f.rule for f in findings}
        expected = {"R1", "R2", "R3", "R4", "R5", "R6", "R7", "R8"}
        ok = True
        for rule in sorted(expected):
            status = "fires" if rule in fired else "MISSED"
            print(f"self-test: {rule} {status}")
            ok &= rule in fired
        false_pos = [f for f in findings if "good" in str(f.path)]
        for f in false_pos:
            print(f"self-test: FALSE POSITIVE {f}")
        ok &= not false_pos
        # The seeded tree must make a plain run exit non-zero.
        ok &= bool(findings)
        print(f"self-test: seeded tree yields {len(findings)} finding(s), "
              f"plain run would exit {1 if findings else 0}")
        return 0 if ok else 2


def main():
    ap = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    ap.add_argument("--root", default=None,
                    help="repository root (default: parent of tools/)")
    ap.add_argument("--self-test", action="store_true",
                    help="verify each rule fires on a seeded violation")
    ap.add_argument("files", nargs="*",
                    help="specific files to lint (default: all of src/)")
    args = ap.parse_args()

    if args.self_test:
        sys.exit(self_test())

    root = pathlib.Path(args.root) if args.root else \
        pathlib.Path(__file__).resolve().parent.parent
    if not (root / "src").is_dir():
        print(f"mar-lint: no src/ under {root}", file=sys.stderr)
        sys.exit(2)

    findings = run_lint(root, args.files or None)
    for f in findings:
        print(f)
    print(f"mar-lint: {len(findings)} finding(s) in "
          f"{'%d file(s)' % len(set(str(f.path) for f in findings)) if findings else 'src/'}")
    sys.exit(1 if findings else 0)


if __name__ == "__main__":
    main()
